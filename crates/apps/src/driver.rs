//! A name-indexed driver over the six case studies at their fast scale —
//! shared by the analyzer (`cool-analyze`), the figure harness's
//! `--trace-out` mode, and the CI observability gate — plus helpers that
//! turn a run's recorded [`ObsTrace`](cool_core::obs::ObsTrace) into the
//! export artifacts: a Perfetto-loadable Chrome trace and the schema'd
//! `cool-metrics-v1` summary.
//!
//! The per-app parameters here are the analyzer scale: small enough that a
//! full sweep is test-suite fast, large enough that stealing, mutex
//! contention and affinity sets all occur. They are pinned — the committed
//! `analyze_findings.json` and the trace/metrics goldens depend on them.

use cool_core::FaultPlan;
use cool_sim::SimConfig;

use crate::common::AppReport;
use crate::Version;

/// The six case studies, in report (alphabetical) order.
pub const APP_NAMES: [&str; 6] = [
    "barnes_hut",
    "block_cholesky",
    "gauss",
    "locusroute",
    "ocean",
    "panel_cholesky",
];

/// Run one app by name at the pinned fast scale. Panics on an unknown name
/// (the callers present [`APP_NAMES`] to the user).
pub fn run_app(
    app: &str,
    cfg: SimConfig,
    version: Version,
    faults: Option<FaultPlan>,
) -> AppReport {
    match app {
        "barnes_hut" => {
            let params = crate::barnes_hut::BhParams {
                nbodies: 128,
                groups: 16,
                timesteps: 2,
                theta: 0.6,
                dt: 0.01,
                seed: 4,
            };
            crate::barnes_hut::run_with_faults(cfg, &params, version, faults)
        }
        "block_cholesky" => {
            let params = crate::block_cholesky::BlockParams { n: 48, block: 8 };
            crate::block_cholesky::run_with_faults(cfg, &params, version, faults)
        }
        "gauss" => {
            let params = crate::gauss::GaussParams { n: 32, seed: 7 };
            crate::gauss::run_with_faults(cfg, &params, version, faults)
        }
        "locusroute" => {
            use workloads::circuit::{Circuit, CircuitParams};
            let params = crate::locusroute::LocusParams {
                circuit: Circuit::generate(CircuitParams {
                    width: 64,
                    height: 16,
                    regions: 4,
                    wires_per_region: 24,
                    crossing_fraction: 0.1,
                    multi_pin_fraction: 0.15,
                    seed: 11,
                }),
                iterations: 2,
            };
            crate::locusroute::run_with_faults(cfg, &params, version, faults)
        }
        "ocean" => {
            let params = workloads::ocean::OceanParams {
                n: 24,
                num_grids: 4,
                regions: 8,
                sweeps: 2,
                seed: 3,
            };
            crate::ocean::run_with_faults(cfg, &params, version, faults)
        }
        "panel_cholesky" => {
            use crate::panel_cholesky::{PanelParams, PanelProblem};
            let prob = PanelProblem::analyse(&PanelParams {
                matrix: workloads::matrices::grid_laplacian(8),
                max_panel_width: 4,
            });
            crate::panel_cholesky::run_with_faults(cfg, &prob, version, faults)
        }
        _ => panic!("unknown app {app:?} (expected one of {APP_NAMES:?})"),
    }
}

/// Export a run's observability artifacts: `(chrome_trace, metrics_json)`.
/// The trace loads in Perfetto / `chrome://tracing`; the metrics document is
/// the byte-stable `cool-metrics-v1` summary, validated before it is
/// returned so a malformed export fails at the producer, not in CI.
pub fn trace_artifacts(report: &AppReport) -> (String, String) {
    let trace = cool_obs::chrome_trace_json(&report.obs.events);
    let metrics = cool_obs::MetricsSummary::from_trace(&report.obs).to_json();
    cool_obs::validate_metrics_json(&metrics)
        .unwrap_or_else(|e| panic!("generated metrics failed validation: {e}"));
    (trace, metrics)
}
