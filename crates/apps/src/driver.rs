//! A name-indexed driver over the six case studies — shared by the analyzer
//! (`cool-analyze`), the figure harness, the `cool-repro` sweep engine, and
//! the CI observability gate — plus helpers that turn a run's recorded
//! [`ObsTrace`](cool_core::obs::ObsTrace) into the export artifacts: a
//! Perfetto-loadable Chrome trace and the schema'd `cool-metrics-v1`
//! summary.
//!
//! Three pinned parameter scales live here, so every harness that runs "app
//! X at scale Y" agrees byte-for-byte on what that means:
//!
//! * [`run_app`] — the *analyzer* scale: small enough that a full sweep is
//!   test-suite fast, large enough that stealing, mutex contention and
//!   affinity sets all occur. Pinned — the committed
//!   `analyze_findings.json` and the trace/metrics goldens depend on it.
//! * [`run_app_scaled`] with [`AppScale::Small`] — the *bench* small scale
//!   behind the golden-figures TSV and the perf trajectory.
//! * [`run_app_scaled`] with [`AppScale::Full`] — the paper-sized inputs
//!   (working sets exceeding the simulated caches, as the paper's did)
//!   behind the committed reproduction tables in `results/`.

use cool_core::FaultPlan;
use cool_sim::SimConfig;

use crate::common::AppReport;
use crate::Version;

/// The six case studies, in report (alphabetical) order.
pub const APP_NAMES: [&str; 6] = [
    "barnes_hut",
    "block_cholesky",
    "gauss",
    "locusroute",
    "ocean",
    "panel_cholesky",
];

/// Run one app by name at the pinned fast scale. Panics on an unknown name
/// (the callers present [`APP_NAMES`] to the user).
pub fn run_app(
    app: &str,
    cfg: SimConfig,
    version: Version,
    faults: Option<FaultPlan>,
) -> AppReport {
    match app {
        "barnes_hut" => {
            let params = crate::barnes_hut::BhParams {
                nbodies: 128,
                groups: 16,
                timesteps: 2,
                theta: 0.6,
                dt: 0.01,
                seed: 4,
            };
            crate::barnes_hut::run_with_faults(cfg, &params, version, faults)
        }
        "block_cholesky" => {
            let params = crate::block_cholesky::BlockParams { n: 48, block: 8 };
            crate::block_cholesky::run_with_faults(cfg, &params, version, faults)
        }
        "gauss" => {
            let params = crate::gauss::GaussParams { n: 32, seed: 7 };
            crate::gauss::run_with_faults(cfg, &params, version, faults)
        }
        "locusroute" => {
            use workloads::circuit::{Circuit, CircuitParams};
            let params = crate::locusroute::LocusParams {
                circuit: Circuit::generate(CircuitParams {
                    width: 64,
                    height: 16,
                    regions: 4,
                    wires_per_region: 24,
                    crossing_fraction: 0.1,
                    multi_pin_fraction: 0.15,
                    seed: 11,
                }),
                iterations: 2,
            };
            crate::locusroute::run_with_faults(cfg, &params, version, faults)
        }
        "ocean" => {
            let params = workloads::ocean::OceanParams {
                n: 24,
                num_grids: 4,
                regions: 8,
                sweeps: 2,
                seed: 3,
            };
            crate::ocean::run_with_faults(cfg, &params, version, faults)
        }
        "panel_cholesky" => {
            use crate::panel_cholesky::{PanelParams, PanelProblem};
            let prob = PanelProblem::analyse(&PanelParams {
                matrix: workloads::matrices::grid_laplacian(8),
                max_panel_width: 4,
            });
            crate::panel_cholesky::run_with_faults(cfg, &prob, version, faults)
        }
        _ => panic!("unknown app {app:?} (expected one of {APP_NAMES:?})"),
    }
}

/// The experiment scales the figure/reproduction harnesses run at:
/// `Small` for tests and CI smoke sweeps (scaled-down machine and inputs),
/// `Full` for the committed paper reproduction (DASH-sized machine, inputs
/// that exceed the simulated caches as the paper's did), and `Deep` for the
/// deep-topology sweep (64-processor 3-level machine, inputs between the
/// other two so a 64-way run still has parallel slack).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AppScale {
    /// Scaled-down machine (`MachineConfig::dash_small`) and inputs.
    Small,
    /// DASH-sized machine (`MachineConfig::dash`) and paper-sized inputs.
    Full,
    /// Deep 3-level machine (`MachineConfig::deep_small`) and mid-sized
    /// inputs for the topology sweep.
    Deep,
}

impl AppScale {
    /// Lower-case name used in record schemas and file paths.
    pub fn name(self) -> &'static str {
        match self {
            AppScale::Small => "small",
            AppScale::Full => "full",
            AppScale::Deep => "deep",
        }
    }

    /// Parse [`AppScale::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(AppScale::Small),
            "full" => Some(AppScale::Full),
            "deep" => Some(AppScale::Deep),
            _ => None,
        }
    }
}

/// Ocean inputs at a given scale.
pub fn ocean_params(scale: AppScale) -> workloads::ocean::OceanParams {
    match scale {
        AppScale::Small => workloads::ocean::OceanParams {
            n: 24,
            num_grids: 4,
            regions: 8,
            sweeps: 2,
            seed: 3,
        },
        // 25 grids of 128×128 doubles ≈ 3 MB of state: well beyond the
        // 256 KB L2, as in the paper's runs. 32 regions of 4 rows = 4 KB
        // each — exactly one page, so `migrate` (page-granular, as on DASH)
        // places each region cleanly.
        AppScale::Full => workloads::ocean::OceanParams {
            n: 128,
            num_grids: 25,
            regions: 32,
            sweeps: 3,
            seed: 3,
        },
        // 32 regions of 2 rows = exactly one small-geometry page each; 8
        // grids keep a 64-way machine fed without full-scale runtimes.
        AppScale::Deep => workloads::ocean::OceanParams {
            n: 64,
            num_grids: 8,
            regions: 32,
            sweeps: 2,
            seed: 3,
        },
    }
}

/// LocusRoute inputs at a given scale.
pub fn locus_params(scale: AppScale) -> crate::locusroute::LocusParams {
    use workloads::circuit::{Circuit, CircuitParams};
    let circuit = match scale {
        AppScale::Small => Circuit::generate(CircuitParams {
            width: 64,
            height: 16,
            regions: 8,
            wires_per_region: 16,
            crossing_fraction: 0.1,
            multi_pin_fraction: 0.15,
            seed: 11,
        }),
        // 256×128 cells × 8 B = 256 KB CostArray; 32 regions of dense local
        // wires — the paper's synthetic dense-wire input.
        AppScale::Full => Circuit::generate(CircuitParams {
            width: 256,
            height: 128,
            regions: 32,
            wires_per_region: 48,
            crossing_fraction: 0.1,
            multi_pin_fraction: 0.15,
            seed: 11,
        }),
        AppScale::Deep => Circuit::generate(CircuitParams {
            width: 128,
            height: 64,
            regions: 32,
            wires_per_region: 32,
            crossing_fraction: 0.1,
            multi_pin_fraction: 0.15,
            seed: 11,
        }),
    };
    crate::locusroute::LocusParams {
        circuit,
        iterations: 2,
    }
}

/// Panel Cholesky problem at a given scale (symbolic analysis included).
pub fn panel_problem(scale: AppScale) -> crate::panel_cholesky::PanelProblem {
    let (k, width) = match scale {
        AppScale::Small => (8, 4),
        // 40×40 grid Laplacian: n = 1600, ample fill — the factor exceeds
        // the L2 cache like the paper's sparse matrices did.
        AppScale::Full => (40, 8),
        AppScale::Deep => (20, 8),
    };
    crate::panel_cholesky::PanelProblem::analyse(&crate::panel_cholesky::PanelParams {
        matrix: workloads::matrices::grid_laplacian(k),
        max_panel_width: width,
    })
}

/// Block Cholesky inputs at a given scale.
pub fn block_params(scale: AppScale) -> crate::block_cholesky::BlockParams {
    match scale {
        AppScale::Small => crate::block_cholesky::BlockParams { n: 48, block: 8 },
        AppScale::Full => crate::block_cholesky::BlockParams { n: 192, block: 16 },
        AppScale::Deep => crate::block_cholesky::BlockParams { n: 96, block: 8 },
    }
}

/// Barnes-Hut inputs at a given scale.
pub fn bh_params(scale: AppScale) -> crate::barnes_hut::BhParams {
    match scale {
        AppScale::Small => crate::barnes_hut::BhParams {
            nbodies: 128,
            groups: 16,
            timesteps: 2,
            theta: 0.6,
            dt: 0.01,
            seed: 4,
        },
        AppScale::Full => crate::barnes_hut::BhParams {
            nbodies: 2048,
            groups: 64,
            timesteps: 3,
            theta: 0.6,
            dt: 0.01,
            seed: 4,
        },
        AppScale::Deep => crate::barnes_hut::BhParams {
            nbodies: 512,
            groups: 64,
            timesteps: 2,
            theta: 0.6,
            dt: 0.01,
            seed: 4,
        },
    }
}

/// Gaussian-elimination inputs at a given scale.
pub fn gauss_params(scale: AppScale) -> crate::gauss::GaussParams {
    match scale {
        AppScale::Small => crate::gauss::GaussParams { n: 32, seed: 7 },
        AppScale::Full => crate::gauss::GaussParams { n: 192, seed: 7 },
        AppScale::Deep => crate::gauss::GaussParams { n: 64, seed: 7 },
    }
}

/// Run one app by name at a bench/repro scale. This is the single dispatch
/// point behind the figure drivers, the golden perf sweep, and the
/// `cool-repro` matrix, so all of them agree on the inputs. Panics on an
/// unknown name.
pub fn run_app_scaled(app: &str, cfg: SimConfig, scale: AppScale, version: Version) -> AppReport {
    match app {
        "barnes_hut" => crate::barnes_hut::run(cfg, &bh_params(scale), version),
        "block_cholesky" => crate::block_cholesky::run(cfg, &block_params(scale), version),
        "gauss" => crate::gauss::run(cfg, &gauss_params(scale), version),
        "locusroute" => crate::locusroute::run(cfg, &locus_params(scale), version),
        "ocean" => crate::ocean::run(cfg, &ocean_params(scale), version),
        "panel_cholesky" => crate::panel_cholesky::run(cfg, &panel_problem(scale), version),
        _ => panic!("unknown app {app:?} (expected one of {APP_NAMES:?})"),
    }
}

/// A short, stable fingerprint of one app's generator inputs at a scale.
/// Feeds the `cool-repro` memoization key: any change to the pinned
/// parameters above must change this string (and thereby every affected
/// config hash), so stale cached records can never satisfy a mutated
/// matrix point.
pub fn params_fingerprint(app: &str, scale: AppScale) -> String {
    let body = match (app, scale) {
        ("ocean", _) => {
            let p = ocean_params(scale);
            format!(
                "n{} g{} r{} s{} seed{}",
                p.n, p.num_grids, p.regions, p.sweeps, p.seed
            )
        }
        ("locusroute", AppScale::Small) => "w64 h16 r8 wpr16 cf0.1 mpf0.15 seed11 it2".into(),
        ("locusroute", AppScale::Full) => "w256 h128 r32 wpr48 cf0.1 mpf0.15 seed11 it2".into(),
        ("locusroute", AppScale::Deep) => "w128 h64 r32 wpr32 cf0.1 mpf0.15 seed11 it2".into(),
        ("panel_cholesky", AppScale::Small) => "lap8 w4".into(),
        ("panel_cholesky", AppScale::Full) => "lap40 w8".into(),
        ("panel_cholesky", AppScale::Deep) => "lap20 w8".into(),
        ("block_cholesky", _) => {
            let p = block_params(scale);
            format!("n{} b{}", p.n, p.block)
        }
        ("barnes_hut", _) => {
            let p = bh_params(scale);
            format!(
                "n{} g{} t{} theta{} dt{} seed{}",
                p.nbodies, p.groups, p.timesteps, p.theta, p.dt, p.seed
            )
        }
        ("gauss", _) => {
            let p = gauss_params(scale);
            format!("n{} seed{}", p.n, p.seed)
        }
        _ => panic!("unknown app {app:?} (expected one of {APP_NAMES:?})"),
    };
    format!("{app}@{} {body}", scale.name())
}

/// The scheduling-version ladder the paper presents for each app, in figure
/// order. The `cool-repro` matrix sweeps exactly these.
pub fn versions_for(app: &str) -> &'static [Version] {
    match app {
        "ocean" | "gauss" => &[Version::Base, Version::Distr, Version::AffinityDistr],
        "locusroute" => &[Version::Base, Version::Affinity, Version::AffinityDistr],
        "panel_cholesky" => &[
            Version::Base,
            Version::Distr,
            Version::AffinityDistr,
            Version::AffinityDistrCluster,
        ],
        "block_cholesky" | "barnes_hut" => &[Version::Base, Version::AffinityDistr],
        _ => panic!("unknown app {app:?} (expected one of {APP_NAMES:?})"),
    }
}

/// The processor counts the paper sweeps for an app: 1–32 in powers of two,
/// except Panel Cholesky at full scale, which the paper stops at 24 "due to
/// limitations in the amount of physical memory".
pub fn procs_for(app: &str, scale: AppScale) -> &'static [usize] {
    if scale == AppScale::Deep {
        // One point per tree tier of the 64-processor deep machine: a lone
        // processor, one chiplet, one socket, the whole machine.
        &[1, 8, 32, 64]
    } else if app == "panel_cholesky" && scale == AppScale::Full {
        &[1, 2, 4, 8, 16, 24]
    } else {
        &[1, 2, 4, 8, 16, 32]
    }
}

/// Export a run's observability artifacts: `(chrome_trace, metrics_json)`.
/// The trace loads in Perfetto / `chrome://tracing`; the metrics document is
/// the byte-stable `cool-metrics-v1` summary, validated before it is
/// returned so a malformed export fails at the producer, not in CI.
pub fn trace_artifacts(report: &AppReport) -> (String, String) {
    let trace = cool_obs::chrome_trace_json(&report.obs.events);
    let mut summary = cool_obs::MetricsSummary::from_trace(&report.obs);
    // Contention does not flow through the event trace; attach the run
    // report's per-resource-class statistics (all zeros in zero-contention
    // mode, so the schema is uniform across modes).
    summary.contention = report
        .run
        .contention
        .rows()
        .iter()
        .map(|&(resource, s)| cool_obs::ContentionRow {
            resource,
            requests: s.requests,
            wait_cycles: s.wait_cycles,
            busy_cycles: s.busy_cycles,
            peak_occupancy: s.peak_occupancy,
        })
        .collect();
    // Steal-level attribution only means anything on a deeper-than-cluster
    // tree; leaving it `None` keeps classic documents (and the committed
    // golden) byte-identical.
    let topo = &report.run.topology;
    if topo.nlevels() > 1 {
        summary.topology = Some(cool_obs::TopologyBlock {
            levels: topo.level_sizes().to_vec(),
            mem_level: topo.mem_level(),
            steals_by_level: report.run.stats.steals_by_level[..=topo.nlevels()].to_vec(),
        });
    }
    // Adaptive-policy attribution only means anything when the feedback
    // layer or the rebalancer actually acted; leaving the block `None`
    // keeps static documents (and every committed golden) byte-identical.
    let st = &report.run.stats;
    if st.adaptive_widenings > 0
        || st.throttled_migrations > 0
        || st.rebalanced_pages > 0
        || summary.rebalances > 0
    {
        summary.adaptive = Some(cool_obs::AdaptiveBlock {
            widenings: st.adaptive_widenings,
            throttled_migrations: st.throttled_migrations,
            rebalanced_pages: st.rebalanced_pages,
            rebalances: summary.rebalances,
        });
    }
    let metrics = summary.to_json();
    cool_obs::validate_metrics_json(&metrics)
        .unwrap_or_else(|e| panic!("generated metrics failed validation: {e}"));
    (trace, metrics)
}
