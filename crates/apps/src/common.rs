//! Conventions shared by the case studies.

use cool_core::obs::ObsTrace;
use cool_core::{AdaptiveConfig, RebalanceConfig, RtEvent, StealPolicy};
use cool_sim::{MachineConfig, RunReport, SimConfig};

/// The scheduling versions the paper's figures compare. Not every app uses
/// every version; each app documents its subset.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Version {
    /// Tasks scheduled round-robin across processors without regard for
    /// locality; data left wherever the default allocation put it
    /// (the `Base` curves).
    Base,
    /// Data structures distributed across memories, but tasks still
    /// scheduled round-robin (the `Distr` curve of Figure 14).
    Distr,
    /// Affinity hints supplied; data not explicitly distributed
    /// (the `Affinity` curve of Figure 10).
    Affinity,
    /// Affinity hints plus object distribution (`Affinity+ObjDistr`,
    /// `Distr+Aff`).
    AffinityDistr,
    /// Affinity + distribution + stealing restricted to the cluster
    /// (`Distr+Aff+ClusterStealing`, Section 6.3).
    AffinityDistrCluster,
    /// Affinity + distribution + stealing bounded one topology level above
    /// the cluster (the enclosing socket on a deep machine). The middle
    /// ground the deep-topology sweeps compare against `ClusterSteal` —
    /// on a 2-level machine the radius already spans the whole machine.
    AffinityDistrSocket,
    /// Affinity + distribution + polite level-by-level widening: each
    /// consecutive failed scan admits victims one topology level further
    /// out (the bubble-scheduler discipline).
    AffinityDistrWiden,
    /// [`AffinityDistrCluster`](Version::AffinityDistrCluster) with the
    /// closed-loop feedback layer on top: the cluster-only ceiling widens
    /// under observed steal starvation and decays back when steals succeed,
    /// and scans are probe-capped by observed queue depth (see
    /// [`cool_core::feedback`]). With adaptation signals quiet this is
    /// cycle-identical to its static parent.
    AffinityDistrAdaptive,
    /// [`AffinityDistr`](Version::AffinityDistr) plus the phase-boundary
    /// global rebalancer: between `waitfor` phases, pages whose observed
    /// cross-cluster miss traffic says they were placed on the wrong
    /// cluster are re-homed when the modelled saving beats the migration
    /// cost.
    AffinityDistrRebalance,
}

impl Version {
    /// All versions, in the order the figures list them.
    pub const ALL: [Version; 9] = [
        Version::Base,
        Version::Distr,
        Version::Affinity,
        Version::AffinityDistr,
        Version::AffinityDistrCluster,
        Version::AffinityDistrSocket,
        Version::AffinityDistrWiden,
        Version::AffinityDistrAdaptive,
        Version::AffinityDistrRebalance,
    ];

    /// Short label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            Version::Base => "Base",
            Version::Distr => "Distr",
            Version::Affinity => "Affinity",
            Version::AffinityDistr => "Affinity+Distr",
            Version::AffinityDistrCluster => "Affinity+Distr+ClusterSteal",
            Version::AffinityDistrSocket => "Affinity+Distr+SocketSteal",
            Version::AffinityDistrWiden => "Affinity+Distr+WidenSteal",
            Version::AffinityDistrAdaptive => "Affinity+Distr+AdaptiveSteal",
            Version::AffinityDistrRebalance => "Affinity+Distr+Rebalance",
        }
    }

    /// Does this version distribute objects across memories?
    pub fn distributes(self) -> bool {
        !matches!(self, Version::Base | Version::Affinity)
    }

    /// Does this version supply affinity hints?
    pub fn hints(self) -> bool {
        !matches!(self, Version::Base | Version::Distr)
    }

    /// The steal policy this version runs under.
    pub fn policy(self) -> StealPolicy {
        match self {
            Version::AffinityDistrCluster | Version::AffinityDistrAdaptive => {
                StealPolicy::cluster_only()
            }
            Version::AffinityDistrSocket => StealPolicy::with_radius(1),
            Version::AffinityDistrWiden => StealPolicy::widening(),
            _ => StealPolicy::default(),
        }
    }

    /// The closed-loop adaptation knobs this version runs under (`None`
    /// for every static version).
    pub fn adaptive(self) -> Option<AdaptiveConfig> {
        match self {
            Version::AffinityDistrAdaptive => Some(AdaptiveConfig::default()),
            _ => None,
        }
    }

    /// The phase-boundary rebalancer knobs this version runs under
    /// (`None` for every version without the rebalancer).
    pub fn rebalance(self) -> Option<RebalanceConfig> {
        match self {
            Version::AffinityDistrRebalance => Some(RebalanceConfig::default()),
            _ => None,
        }
    }
}

/// The result of one application run: the runtime report plus the app-level
/// correctness verdict.
#[derive(Clone, Debug)]
pub struct AppReport {
    /// Which version ran.
    pub version: Version,
    /// The runtime/machine report.
    pub run: RunReport,
    /// Maximum numeric deviation from the sequential reference (each app
    /// defines the metric; must be small).
    pub max_error: f64,
    /// Analyzer event stream (empty unless the run was configured with
    /// [`SimConfig::record_events`] / `with_events()`).
    pub events: Vec<RtEvent>,
    /// Scheduler-observability trace (empty unless the run was configured
    /// with `SimConfig::with_trace()`).
    pub obs: ObsTrace,
}

impl AppReport {
    /// Speedup against a serial-cycle baseline.
    pub fn speedup(&self, serial_cycles: u64) -> f64 {
        self.run.speedup(serial_cycles)
    }
}

/// Apply a version's policy, adaptation and rebalancing knobs to a base
/// config. Static versions leave the adaptive/rebalance options `None`, so
/// their fingerprints (and therefore committed sweep records) are untouched.
pub fn apply_version(mut cfg: SimConfig, version: Version) -> SimConfig {
    cfg = cfg.with_policy(version.policy());
    if let Some(a) = version.adaptive() {
        cfg = cfg.with_adaptive(a);
    }
    if let Some(r) = version.rebalance() {
        cfg = cfg.with_rebalance(r);
    }
    cfg
}

/// Simulator configuration for an app run: DASH-like machine at the given
/// processor count, with the version's steal policy.
pub fn sim_config(nprocs: usize, version: Version) -> SimConfig {
    apply_version(SimConfig::new(MachineConfig::dash(nprocs)), version)
}

/// Scaled-down machine for fast tests.
pub fn sim_config_small(nprocs: usize, version: Version) -> SimConfig {
    apply_version(SimConfig::new(MachineConfig::dash_small(nprocs)), version)
}

/// Scaled-down machine with one processor per cluster (every processor has
/// its own local memory). Locality tests use this: with DASH's 4-processor
/// clusters a small machine has so few memory nodes that "distribution"
/// barely moves anything, whereas flat topology makes local-vs-remote
/// classification crisp.
pub fn sim_config_small_flat(nprocs: usize, version: Version) -> SimConfig {
    let mut m = MachineConfig::dash_small(nprocs);
    m.procs_per_cluster = 1;
    apply_version(SimConfig::new(m), version)
}

/// Round-robin spawn counter used by the Base/Distr versions ("the wire
/// tasks are scheduled across processors in a round-robin fashion").
#[derive(Debug, Default)]
pub struct RoundRobin(std::cell::Cell<usize>);

impl RoundRobin {
    /// Next processor number.
    pub fn next(&self) -> usize {
        let v = self.0.get();
        self.0.set(v.wrapping_add(1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Version::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), Version::ALL.len());
    }

    #[test]
    fn version_properties() {
        assert!(!Version::Base.distributes());
        assert!(!Version::Base.hints());
        assert!(Version::Distr.distributes());
        assert!(!Version::Distr.hints());
        assert!(Version::Affinity.hints());
        assert!(!Version::Affinity.distributes());
        assert!(Version::AffinityDistrCluster.policy().cluster_only);
        assert!(!Version::Base.policy().cluster_only);
    }

    #[test]
    fn round_robin_counts() {
        let rr = RoundRobin::default();
        assert_eq!(rr.next(), 0);
        assert_eq!(rr.next(), 1);
        assert_eq!(rr.next(), 2);
    }
}
