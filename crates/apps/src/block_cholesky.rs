//! Block Cholesky (Section 6.4): factorization with the matrix represented
//! as a set of blocks instead of panels.
//!
//! The paper's block code is sparse; we use the dense-blocked equivalent
//! (every block stored), which preserves the scheduling structure — a
//! dataflow of `potrf` (factor diagonal block), `trsm` (triangular solve of
//! a subdiagonal block) and `gemm` (Schur update of a block by a pair of
//! completed subdiagonal blocks) tasks with per-block affinity — while the
//! `sparse` crate covers sparsity in the panel study. DESIGN.md records the
//! substitution.
//!
//! Dependencies for block (i,j) of a B×B block matrix (i ≥ j):
//! * `gemm(i,j,k)` (k < j) needs `trsm(i,k)` and `trsm(j,k)`;
//! * block (i,j) is fully updated after its j gemms;
//! * `potrf(j)` runs on fully-updated (j,j);
//! * `trsm(i,j)` runs on fully-updated (i,j) after `potrf(j)`.
//!
//! Versions: `Base` (blocks on one memory, tasks round-robin), `Distr`
//! (blocks distributed, tasks round-robin), `AffinityDistr` (distribution +
//! OBJECT affinity on the destination block, TASK affinity on the source
//! block for gemms — cache reuse of the source while collocated with the
//! destination, like the Gaussian elimination of Figure 3).

use std::cell::RefCell;
use std::rc::Rc;

use cool_core::{AffinitySpec, ObjRef};
use cool_sim::{FaultPlan, SimConfig, SimRuntime, Task, TaskCtx};
use sparse::dense::{block_gemm_sub, block_potrf, block_trsm, dense_cholesky};
use sparse::DenseMatrix;

use crate::common::{AppReport, RoundRobin, Version};

/// Cycles per fused multiply-add in the block kernels.
const FLOP_CYCLES: u64 = 2;

/// Block Cholesky parameters.
#[derive(Clone, Copy, Debug)]
pub struct BlockParams {
    /// Matrix dimension (must be a multiple of `block`).
    pub n: usize,
    /// Block edge size.
    pub block: usize,
}

impl Default for BlockParams {
    fn default() -> Self {
        BlockParams { n: 128, block: 16 }
    }
}

struct State {
    /// blocks[i][j] for i ≥ j, each `w × w` column-major.
    blocks: Vec<Vec<Vec<f64>>>,
    /// gemm updates still owed to block (i,j).
    upd_pending: Vec<Vec<usize>>,
    /// trsm(i,k) completion flags (i > k); diagonal entry = potrf done.
    done: Vec<Vec<bool>>,
}

struct Env {
    state: Rc<RefCell<State>>,
    objs: Vec<Vec<ObjRef>>,
    block_bytes: u64,
    w: usize,
    nb: usize,
    version: Version,
    rr: Rc<RoundRobin>,
}

/// One full run.
pub fn run(cfg: SimConfig, params: &BlockParams, version: Version) -> AppReport {
    run_with_faults(cfg, params, version, None)
}

/// One full run, optionally perturbed by a deterministic [`FaultPlan`]
/// (stragglers, stalls, transient task failures). Injection moves only the
/// schedule and timing; the factor is unaffected.
pub fn run_with_faults(
    cfg: SimConfig,
    params: &BlockParams,
    version: Version,
    faults: Option<FaultPlan>,
) -> AppReport {
    assert_eq!(params.n % params.block, 0, "n must be a multiple of block");
    let mut rt = SimRuntime::new(cfg);
    if let Some(plan) = faults {
        rt.set_fault_plan(plan);
    }
    let nprocs = rt.nservers();
    let (n, w) = (params.n, params.block);
    let nb = n / w;
    let a = workloads::matrices::dense_spd(n);
    let block_bytes = (w * w * 8) as u64;

    // Extract the lower-triangle blocks and allocate their simulated
    // objects (round-robin distributed in the Distr versions).
    let mut blocks = Vec::with_capacity(nb);
    let mut objs = Vec::with_capacity(nb);
    let mut idx = 0usize;
    for i in 0..nb {
        let mut brow = Vec::with_capacity(i + 1);
        let mut orow = Vec::with_capacity(i + 1);
        for j in 0..=i {
            let mut v = vec![0.0; w * w];
            for c in 0..w {
                for r in 0..w {
                    v[c * w + r] = a.get(i * w + r, j * w + c);
                }
            }
            brow.push(v);
            let target = if version.distributes() { idx % nprocs } else { 0 };
            orow.push(rt.machine_mut().alloc_on_proc(target, block_bytes));
            idx += 1;
        }
        blocks.push(brow);
        objs.push(orow);
    }

    let state = Rc::new(RefCell::new(State {
        blocks,
        upd_pending: (0..nb).map(|i| (0..=i).collect()).collect(),
        done: (0..nb).map(|i| vec![false; i + 1]).collect(),
    }));

    rt.reset_monitor();
    let env = Rc::new(Env {
        state: state.clone(),
        objs,
        block_bytes,
        w,
        nb,
        version,
        rr: Rc::new(RoundRobin::default()),
    });

    {
        let env = env.clone();
        rt.run_phase(move |ctx| {
            // Block (0,0) owes no updates: start the dataflow.
            spawn_potrf(ctx, 0, &env);
        });
    }

    let run = rt.report();
    let events = rt.take_events();
    // Verify: assemble L and compare against dense Cholesky of A.
    let mut l = DenseMatrix::zeros(n, n);
    {
        let st = state.borrow();
        for i in 0..nb {
            for j in 0..=i {
                for c in 0..w {
                    for r in 0..w {
                        l.set(i * w + r, j * w + c, st.blocks[i][j][c * w + r]);
                    }
                }
            }
        }
    }
    let lref = dense_cholesky(&a);
    AppReport {
        version,
        run,
        max_error: l.max_diff(&lref),
        events,
        obs: rt.take_obs(),
    }
}

fn affinity_for(env: &Env, dst: ObjRef, src: Option<ObjRef>) -> AffinitySpec {
    if env.version.hints() {
        match src {
            Some(s) => AffinitySpec::task(s).and_object(dst),
            None => AffinitySpec::simple(dst),
        }
    } else {
        AffinitySpec::processor(env.rr.next())
    }
}

fn spawn_potrf(ctx: &mut TaskCtx<'_>, j: usize, env: &Rc<Env>) {
    let env2 = env.clone();
    let dst = env.objs[j][j];
    let body = move |c: &mut TaskCtx<'_>| {
        let w = env2.w;
        {
            let mut st = env2.state.borrow_mut();
            block_potrf(&mut st.blocks[j][j], w);
        }
        c.read(env2.objs[j][j], env2.block_bytes);
        c.write(env2.objs[j][j], env2.block_bytes);
        c.compute((w * w * w / 3) as u64 * FLOP_CYCLES);
        // Release: publish L(j,j) on its sync token for trsms released
        // later through the `done[j][j]` flag rather than spawned by us.
        c.sync(env2.objs[j][j]);
        // potrf(j) done: release trsm(i,j) for fully-updated blocks below.
        let mut ready = Vec::new();
        {
            let mut st = env2.state.borrow_mut();
            st.done[j][j] = true;
            for i in j + 1..env2.nb {
                if st.upd_pending[i][j] == 0 {
                    ready.push(i);
                }
            }
        }
        for i in ready {
            spawn_trsm(c, i, j, &env2);
        }
    };
    let aff = affinity_for(env, dst, None);
    ctx.spawn(Task::new(body).with_affinity(aff).with_mutex(dst));
}

fn spawn_trsm(ctx: &mut TaskCtx<'_>, i: usize, k: usize, env: &Rc<Env>) {
    let env2 = env.clone();
    let dst = env.objs[i][k];
    let src = env.objs[k][k];
    let body = move |c: &mut TaskCtx<'_>| {
        let w = env2.w;
        {
            let mut st = env2.state.borrow_mut();
            let st = &mut *st;
            // Split borrow: diagonal block (k,k) is in row k, dest in row i.
            let (head, tail) = st.blocks.split_at_mut(i);
            let lkk = &head[k][k];
            block_trsm(&mut tail[0][k], lkk, w);
        }
        c.read(src, env2.block_bytes);
        c.read(dst, env2.block_bytes);
        c.write(dst, env2.block_bytes);
        c.compute((w * w * w) as u64 * FLOP_CYCLES);
        // Release: publish L(i,k) for the partner trsm that spawns the gemm.
        c.sync(dst);
        // trsm(i,k) done: spawn gemms with every finished partner column k
        // block, including the symmetric-diagonal gemm(i,i,k).
        let mut partners = Vec::new();
        {
            let mut st = env2.state.borrow_mut();
            st.done[i][k] = true;
            // A pair {i, m} is released by whichever trsm finishes second,
            // so each gemm is spawned exactly once; m == i is the
            // symmetric-diagonal update gemm(i,i,k).
            for m in k + 1..env2.nb {
                if m == i || st.done[m][k] {
                    partners.push(m);
                }
            }
        }
        for m in partners {
            // Acquire: `done[m][k]` said the partner trsm finished; pick up
            // its sync release so the gemm is ordered after both inputs.
            c.sync(env2.objs[m][k]);
            let (di, dj) = (i.max(m), i.min(m));
            spawn_gemm(c, di, dj, k, &env2);
        }
    };
    let aff = affinity_for(env, dst, Some(src));
    ctx.spawn(Task::new(body).with_affinity(aff).with_mutex(dst));
}

fn spawn_gemm(ctx: &mut TaskCtx<'_>, i: usize, j: usize, k: usize, env: &Rc<Env>) {
    let env2 = env.clone();
    let dst = env.objs[i][j];
    let src_a = env.objs[i][k];
    let body = move |c: &mut TaskCtx<'_>| {
        let w = env2.w;
        let now_ready = {
            let mut st = env2.state.borrow_mut();
            let st = &mut *st;
            // C(i,j) -= A(i,k)·B(j,k)ᵀ, all in the lower triangle (k < j ≤ i).
            let a_blk = st.blocks[i][k].clone();
            let b_blk = st.blocks[j][k].clone();
            block_gemm_sub(&mut st.blocks[i][j], &a_blk, &b_blk, w);
            st.upd_pending[i][j] -= 1;
            st.upd_pending[i][j] == 0
        };
        c.read(env2.objs[i][k], env2.block_bytes);
        c.read(env2.objs[j][k], env2.block_bytes);
        c.read(dst, env2.block_bytes);
        c.write(dst, env2.block_bytes);
        c.compute((w * w * w) as u64 * FLOP_CYCLES);
        if now_ready {
            if i == j {
                spawn_potrf(c, j, &env2);
            } else {
                let potrf_done = env2.state.borrow().done[j][j];
                if potrf_done {
                    // Acquire potrf(j)'s release before reading L(j,j).
                    c.sync(env2.objs[j][j]);
                    spawn_trsm(c, i, j, &env2);
                }
                // Otherwise potrf(j)'s completion will release it.
            }
        }
    };
    let aff = affinity_for(env, dst, Some(src_a));
    ctx.spawn(Task::new(body).with_affinity(aff).with_mutex(dst));
}

/// Serial baseline cycles (1-processor Base run).
pub fn serial_cycles(cfg_for_one: SimConfig, params: &BlockParams) -> u64 {
    assert_eq!(cfg_for_one.machine.nprocs, 1);
    run(cfg_for_one, params, Version::Base).run.elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::sim_config_small;

    fn p() -> BlockParams {
        BlockParams { n: 48, block: 8 }
    }

    #[test]
    fn all_versions_factor_correctly() {
        for v in [Version::Base, Version::Distr, Version::AffinityDistr] {
            let rep = run(sim_config_small(4, v), &p(), v);
            assert!(rep.max_error < 1e-8, "{v:?}: error {}", rep.max_error);
        }
    }

    #[test]
    fn task_count_matches_block_dag() {
        let rep = run(sim_config_small(4, Version::Base), &p(), Version::Base);
        let nb = (p().n / p().block) as u64;
        // seed + nb potrf + nb(nb-1)/2 trsm + sum_j j·(nb-j) gemms... direct
        // count: gemm(i,j,k) for k < j ≤ i.
        let mut gemms = 0u64;
        for i in 0..nb {
            for j in 0..=i {
                gemms += j;
            }
        }
        let expected = 1 + nb + nb * (nb - 1) / 2 + gemms;
        assert_eq!(rep.run.stats.executed, expected);
    }

    #[test]
    fn affinity_improves_locality() {
        let base = run(sim_config_small(8, Version::Base), &p(), Version::Base);
        let aff = run(
            sim_config_small(8, Version::AffinityDistr),
            &p(),
            Version::AffinityDistr,
        );
        assert!(
            aff.run.mem.local_fraction() > base.run.mem.local_fraction(),
            "aff {} vs base {}",
            aff.run.mem.local_fraction(),
            base.run.mem.local_fraction()
        );
    }

    #[test]
    fn single_block_matrix_is_just_potrf() {
        let rep = run(
            sim_config_small(2, Version::Base),
            &BlockParams { n: 8, block: 8 },
            Version::Base,
        );
        assert!(rep.max_error < 1e-10);
        assert_eq!(rep.run.stats.executed, 2); // seed + potrf
    }
}
