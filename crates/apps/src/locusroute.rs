//! LocusRoute (Section 6.2): parallel standard-cell wire routing over a
//! shared CostArray, with processor affinity by geographic region.
//!
//! Each task routes one wire: it rips out the wire's previous route
//! (decrementing CostArray occupancy), evaluates candidate routes (the two
//! L-shaped bends plus Z-shaped routes through intermediate columns) by
//! summing the CostArray cells each would traverse, picks the cheapest, and
//! writes it back (incrementing occupancy). The program iterates until the
//! routes converge (`Number` iterations in Figure 9).
//!
//! The affinity structure is the paper's: the CostArray is viewed as
//! partitioned into vertical-strip regions; wires whose midpoint falls in a
//! region are routed on the processor conceptually assigned to that region
//! (`affinity (Region (CurrentWire), PROCESSOR)`), reusing that region of
//! the CostArray in the processor's cache. Distributing the regions across
//! memories additionally turns the remaining misses into local ones.
//!
//! Versions:
//! * `Base` — wires scheduled round-robin "without regard for locality".
//! * `Affinity` — processor-affinity hint by region (no distribution).
//! * `AffinityDistr` — hint + CostArray regions physically distributed.

use std::cell::RefCell;
use std::rc::Rc;

use cool_core::{AffinitySpec, ObjRef};
use cool_sim::{FaultPlan, SimConfig, SimRuntime, Task, TaskCtx};
use workloads::circuit::{Circuit, Net, Wire};

use crate::common::{AppReport, RoundRobin, Version};

/// A concrete route: the cells a wire occupies.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Route {
    pub cells: Vec<(usize, usize)>,
}

/// Cycles charged per CostArray cell examined.
const CELL_EVAL_CYCLES: u64 = 6;

struct State {
    /// Occupancy per routing cell (the CostArray; one u32 per cell here —
    /// the paper stores horizontal+vertical counts, we keep one combined
    /// count per cell plus direction implied by path segments).
    cost: Vec<u32>,
    /// Current route of each wire (empty before the first iteration).
    routes: Vec<Route>,
}

/// LocusRoute parameters: the circuit plus iteration count.
#[derive(Clone, Debug)]
pub struct LocusParams {
    pub circuit: Circuit,
    pub iterations: usize,
}

impl LocusParams {
    /// Default synthetic circuit (the paper used a synthetic dense-wire
    /// input too).
    pub fn with_circuit(circuit: Circuit, iterations: usize) -> Self {
        LocusParams {
            circuit,
            iterations,
        }
    }
}

/// One full run.
pub fn run(cfg: SimConfig, params: &LocusParams, version: Version) -> AppReport {
    run_with_faults(cfg, params, version, None)
}

/// One full run, optionally perturbed by a deterministic [`FaultPlan`]
/// (stragglers, stalls, transient task failures). Injection moves only the
/// schedule and timing; the routing result is unaffected.
pub fn run_with_faults(
    cfg: SimConfig,
    params: &LocusParams,
    version: Version,
    faults: Option<FaultPlan>,
) -> AppReport {
    let mut rt = SimRuntime::new(cfg);
    if let Some(plan) = faults {
        rt.set_fault_plan(plan);
    }
    let nprocs = rt.nservers();
    let circ = &params.circuit;
    let (w, h, nregions) = (circ.width, circ.height, circ.regions);
    let cell_bytes = 8u64; // two 32-bit counts per routing cell in the paper
    let strip = w / nregions;

    // The CostArray, column-major by strips so a region is contiguous.
    // Base/Affinity: allocated from one memory. AffinityDistr: region r
    // migrated to processor r's local memory.
    let cost_obj = rt
        .machine_mut()
        .alloc_on_proc(0, (w * h) as u64 * cell_bytes);
    if version.distributes() {
        for r in 0..nregions {
            let x0 = r * strip;
            let x1 = if r + 1 == nregions { w } else { (r + 1) * strip };
            let off = (x0 * h) as u64 * cell_bytes;
            let len = ((x1 - x0) * h) as u64 * cell_bytes;
            rt.machine_mut().migrate_to_proc(cost_obj.offset(off), len, r % nprocs);
        }
    }

    let state = Rc::new(RefCell::new(State {
        cost: vec![0; w * h],
        routes: vec![Route::default(); circ.nets.len()],
    }));

    rt.reset_monitor();
    let rr = Rc::new(RoundRobin::default());

    for _iter in 0..params.iterations {
        let state = state.clone();
        let rr = rr.clone();
        let nets = circ.nets.clone();
        let circ2 = circ.clone();
        rt.run_phase(move |ctx| {
            for (wi, net) in nets.iter().enumerate() {
                let state = state.clone();
                let net = net.clone();
                let region = circ2.region_of_net(&net);
                let body = move |c: &mut TaskCtx<'_>| {
                    route_net(c, &state, wi, &net, w, h, cost_obj, cell_bytes);
                };
                let task = if version.hints() {
                    // affinity (Region (CurrentWire), PROCESSOR) — Figure 9.
                    Task::new(body).with_affinity(AffinitySpec::processor(region))
                } else {
                    Task::new(body).with_affinity(AffinitySpec::processor(rr.next()))
                };
                ctx.spawn(task);
            }
        });
    }

    let run = rt.report();
    let events = rt.take_events();
    let max_error = verify(circ, &state.borrow()) as f64;
    AppReport {
        version,
        run,
        max_error,
        events,
        obs: rt.take_obs(),
    }
}

/// Route one net: rip out the old route, route each pin-to-pin segment of
/// the chain (evaluating candidates against the CostArray), and commit the
/// union.
#[allow(clippy::too_many_arguments)]
fn route_net(
    c: &mut TaskCtx<'_>,
    state: &Rc<RefCell<State>>,
    wi: usize,
    net: &Net,
    w: usize,
    h: usize,
    cost_obj: ObjRef,
    cell_bytes: u64,
) {
    let mut st = state.borrow_mut();
    let st = &mut *st;
    // Rip out the previous route. CostArray updates are relaxed atomics: the
    // real LocusRoute lets concurrent wire tasks read slightly stale
    // occupancy counts by design (a SPLASH "benign race"), so the accesses
    // are race-exempt against each other for the analyzer while costing the
    // same machine traffic.
    let old = std::mem::take(&mut st.routes[wi]);
    for &(x, y) in &old.cells {
        st.cost[x * h + y] -= 1;
        c.write_atomic(cost_obj.offset((x * h + y) as u64 * cell_bytes), cell_bytes);
    }
    // Route each segment of the pin chain; the net's route is the union.
    let mut cells: Vec<(usize, usize)> = Vec::new();
    let mut examined = 0u64;
    for wire in net.segments() {
        let candidates = candidate_routes(wire, w, h);
        let mut best: Option<(u64, Route)> = None;
        for cand in candidates {
            let mut total = 0u64;
            for &(x, y) in &cand.cells {
                total += st.cost[x * h + y] as u64;
                c.read_atomic(cost_obj.offset((x * h + y) as u64 * cell_bytes), cell_bytes);
                examined += 1;
            }
            // Penalise length so ties prefer shorter routes.
            total = total * 4 + cand.cells.len() as u64;
            if best.as_ref().is_none_or(|(b, _)| total < *b) {
                best = Some((total, cand));
            }
        }
        let (_, chosen) = best.expect("at least one candidate route");
        cells.extend_from_slice(&chosen.cells);
    }
    c.compute(examined * CELL_EVAL_CYCLES);
    cells.sort_unstable();
    cells.dedup();
    let chosen = Route { cells };
    for &(x, y) in &chosen.cells {
        st.cost[x * h + y] += 1;
        c.write_atomic(cost_obj.offset((x * h + y) as u64 * cell_bytes), cell_bytes);
    }
    st.routes[wi] = chosen;
}

/// Candidate routes: the two L-shaped single-bend routes and Z-shaped routes
/// with the vertical jog at a few intermediate columns. Crate-visible so the
/// service adapter routes with the same candidate generator.
pub(crate) fn candidate_routes(wire: Wire, _w: usize, _h: usize) -> Vec<Route> {
    let (x0, y0) = wire.from;
    let (x1, y1) = wire.to;
    let mut out = Vec::new();
    // L-route A: horizontal at y0 then vertical at x1.
    out.push(l_route(x0, y0, x1, y1, false));
    if x0 != x1 && y0 != y1 {
        // L-route B: vertical at x0 then horizontal at y1.
        out.push(l_route(x0, y0, x1, y1, true));
        // Z-routes: jog at up to 3 interior columns.
        let (lo, hi) = (x0.min(x1), x0.max(x1));
        if hi - lo > 1 {
            let step = ((hi - lo) / 4).max(1);
            let mut xm = lo + step;
            while xm < hi && out.len() < 5 {
                out.push(z_route(x0, y0, x1, y1, xm));
                xm += step;
            }
        }
    }
    out
}

fn hseg(y: usize, xa: usize, xb: usize) -> impl Iterator<Item = (usize, usize)> {
    let (lo, hi) = (xa.min(xb), xa.max(xb));
    (lo..=hi).map(move |x| (x, y))
}

fn vseg(x: usize, ya: usize, yb: usize) -> impl Iterator<Item = (usize, usize)> {
    let (lo, hi) = (ya.min(yb), ya.max(yb));
    (lo..=hi).map(move |y| (x, y))
}

fn l_route(x0: usize, y0: usize, x1: usize, y1: usize, vertical_first: bool) -> Route {
    let mut cells: Vec<(usize, usize)> = if vertical_first {
        vseg(x0, y0, y1).chain(hseg(y1, x0, x1)).collect()
    } else {
        hseg(y0, x0, x1).chain(vseg(x1, y0, y1)).collect()
    };
    cells.sort_unstable();
    cells.dedup();
    Route { cells }
}

fn z_route(x0: usize, y0: usize, x1: usize, y1: usize, xm: usize) -> Route {
    let mut cells: Vec<(usize, usize)> = hseg(y0, x0, xm)
        .chain(vseg(xm, y0, y1))
        .chain(hseg(y1, xm, x1))
        .collect();
    cells.sort_unstable();
    cells.dedup();
    Route { cells }
}

/// Verification: every wire has a legal route connecting its pins, and the
/// CostArray is exactly the sum of route occupancies. Returns the number of
/// violations (must be 0).
fn verify(circ: &Circuit, st: &State) -> usize {
    let (w, h) = (circ.width, circ.height);
    let mut violations = 0;
    let mut expect = vec![0u32; w * h];
    for (wi, net) in circ.nets.iter().enumerate() {
        let r = &st.routes[wi];
        if r.cells.is_empty() {
            violations += 1;
            continue;
        }
        if net.pins.iter().any(|p| !r.cells.contains(p)) {
            violations += 1;
        }
        for &(x, y) in &r.cells {
            if x >= w || y >= h {
                violations += 1;
            } else {
                expect[x * h + y] += 1;
            }
        }
        // Connectivity: the cell set must be connected (4-neighbourhood).
        if !connected(&r.cells) {
            violations += 1;
        }
    }
    if expect != st.cost {
        violations += 1;
    }
    violations
}

fn connected(cells: &[(usize, usize)]) -> bool {
    if cells.is_empty() {
        return false;
    }
    let set: std::collections::HashSet<(usize, usize)> = cells.iter().copied().collect();
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![cells[0]];
    seen.insert(cells[0]);
    while let Some((x, y)) = stack.pop() {
        let mut push = |nx: usize, ny: usize| {
            if set.contains(&(nx, ny)) && seen.insert((nx, ny)) {
                stack.push((nx, ny));
            }
        };
        if x > 0 {
            push(x - 1, y);
        }
        push(x + 1, y);
        if y > 0 {
            push(x, y - 1);
        }
        push(x, y + 1);
    }
    seen.len() == set.len()
}

/// Serial baseline cycles (1-processor Base run).
pub fn serial_cycles(cfg_for_one: SimConfig, params: &LocusParams) -> u64 {
    assert_eq!(cfg_for_one.machine.nprocs, 1);
    run(cfg_for_one, params, Version::Base).run.elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::sim_config_small;
    use workloads::circuit::CircuitParams;

    fn small() -> LocusParams {
        LocusParams {
            circuit: Circuit::generate(CircuitParams {
                width: 64,
                height: 16,
                regions: 4,
                wires_per_region: 24,
                crossing_fraction: 0.1,
            multi_pin_fraction: 0.15,
                seed: 11,
            }),
            iterations: 2,
        }
    }

    #[test]
    fn routes_are_legal_in_all_versions() {
        for v in [Version::Base, Version::Affinity, Version::AffinityDistr] {
            let rep = run(sim_config_small(4, v), &small(), v);
            assert_eq!(rep.max_error, 0.0, "{v:?} produced illegal routes");
        }
    }

    #[test]
    fn affinity_routes_most_wires_on_their_region_processor() {
        // 4 regions on 4 processors: every hinted wire maps to one server.
        let rep = run(
            sim_config_small(4, Version::Affinity),
            &small(),
            Version::Affinity,
        );
        // The paper reports >80% adherence.
        assert!(
            rep.run.stats.adherence() > 0.8,
            "adherence {}",
            rep.run.stats.adherence()
        );
    }

    #[test]
    fn affinity_reduces_cache_misses() {
        let p = small();
        let base = run(sim_config_small(4, Version::Base), &p, Version::Base);
        let aff = run(sim_config_small(4, Version::Affinity), &p, Version::Affinity);
        assert!(
            aff.run.mem.misses() < base.run.mem.misses(),
            "affinity {} vs base {} misses",
            aff.run.mem.misses(),
            base.run.mem.misses()
        );
    }

    #[test]
    fn distribution_raises_local_fraction() {
        use crate::common::sim_config_small_flat;
        let p = small();
        let aff = run(sim_config_small_flat(8, Version::Affinity), &p, Version::Affinity);
        let distr = run(
            sim_config_small_flat(8, Version::AffinityDistr),
            &p,
            Version::AffinityDistr,
        );
        assert!(
            distr.run.mem.local_fraction() > aff.run.mem.local_fraction(),
            "distr {} vs aff {}",
            distr.run.mem.local_fraction(),
            aff.run.mem.local_fraction()
        );
    }

    #[test]
    fn candidate_routes_connect_pins() {
        let wire = Wire {
            from: (3, 2),
            to: (10, 9),
        };
        for r in candidate_routes(wire, 16, 16) {
            assert!(r.cells.contains(&wire.from));
            assert!(r.cells.contains(&wire.to));
            assert!(connected(&r.cells), "{r:?}");
        }
    }

    #[test]
    fn degenerate_wires_route() {
        // Same-cell wire and straight-line wire.
        for wire in [
            Wire {
                from: (5, 5),
                to: (5, 5),
            },
            Wire {
                from: (2, 7),
                to: (9, 7),
            },
        ] {
            let c = candidate_routes(wire, 16, 16);
            assert!(!c.is_empty());
            assert!(c[0].cells.contains(&wire.from) && c[0].cells.contains(&wire.to));
        }
    }
}
