//! Integration tests for the prefetch and trace extensions of the simulated
//! runtime.

use cool_core::{AffinitySpec, NodeId, StealPolicy};
use cool_sim::{MachineConfig, SimConfig, SimRuntime, Task};

fn quiet_config(nprocs: usize) -> SimConfig {
    SimConfig::new(MachineConfig::dash_small(nprocs)).with_policy(StealPolicy::disabled())
}

#[test]
fn prefetch_turns_remote_misses_into_hits() {
    // A task on cluster 0 reads an object homed on cluster 1. Without
    // prefetch, every line misses remotely; with prefetch, the fills are
    // issued ahead (cheap) and the reads hit.
    let run = |prefetch: bool| {
        let mut rt = SimRuntime::new(quiet_config(8));
        let obj = rt.machine_mut().alloc_on_node(NodeId(1), 4096);
        rt.reset_monitor();
        rt.run_phase(move |ctx| {
            let mut t = Task::new(move |c| {
                c.read(obj, 4096);
                c.compute(100);
            })
            .with_affinity(AffinitySpec::processor(0));
            if prefetch {
                t = t.with_prefetch(vec![(obj, 4096)]);
            }
            ctx.spawn(t);
        });
        rt.report()
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with.elapsed < without.elapsed / 2,
        "prefetch should hide most of the remote latency: {} vs {}",
        with.elapsed,
        without.elapsed
    );
    // The touched lines are hits after prefetching.
    assert!(with.mem.l1_hits > 200, "{:?}", with.mem);
    assert!(without.mem.remote_misses > 200, "{:?}", without.mem);
}

#[test]
fn prefetch_preserves_results_and_task_accounting() {
    let mut rt = SimRuntime::new(quiet_config(4));
    let obj = rt.machine_mut().alloc_on_node(NodeId(0), 1024);
    let hits = std::rc::Rc::new(std::cell::Cell::new(0u32));
    let h = hits.clone();
    rt.run_phase(move |ctx| {
        for i in 0..8 {
            let h = h.clone();
            ctx.spawn(
                Task::new(move |c| {
                    c.read(obj, 1024);
                    h.set(h.get() + 1);
                })
                .with_affinity(AffinitySpec::processor(i))
                .with_prefetch(vec![(obj, 1024)]),
            );
        }
    });
    assert_eq!(hits.get(), 8);
    assert_eq!(rt.stats().executed, 9); // seed + 8
}

#[test]
fn trace_shows_back_to_back_set_service() {
    let mut rt = SimRuntime::new(quiet_config(2));
    rt.enable_trace();
    let tok1 = cool_core::ObjRef(0x40);
    // Pick a second token that does not collide with tok1 in a 64-slot
    // affinity array (collisions legitimately interleave sets).
    let slot = |t: cool_core::ObjRef| cool_core::affinity::hash_token(t) % 64;
    let tok2 = (1u64..)
        .map(|i| cool_core::ObjRef(0x4000 + i * 64))
        .find(|&t| slot(t) != slot(tok1))
        .unwrap();
    rt.run_phase(move |ctx| {
        // Interleave two sets; the affinity queues must serve each set as a
        // contiguous burst per server.
        for _ in 0..4 {
            ctx.spawn(
                Task::new(|c| c.compute(100))
                    .with_label("S1")
                    .with_affinity(AffinitySpec::task(tok1)),
            );
            ctx.spawn(
                Task::new(|c| c.compute(100))
                    .with_label("S2")
                    .with_affinity(AffinitySpec::task(tok2)),
            );
        }
    });
    // Per server, the sequence of labels (ignoring the seed) must be
    // grouped: all of one set, then all of the other.
    for p in 0..2 {
        let labels: Vec<&str> = rt
            .trace()
            .iter()
            .filter(|e| e.proc.index() == p && e.label != "task" && e.label != "phase-seed")
            .map(|e| e.label)
            .collect();
        if labels.is_empty() {
            continue;
        }
        let switches = labels.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            switches <= 1,
            "P{p} interleaved sets: {labels:?} ({switches} switches)"
        );
    }
}

#[test]
fn trace_is_deterministic() {
    let run = || {
        let mut rt = SimRuntime::new(SimConfig::new(MachineConfig::dash_small(4)));
        rt.enable_trace();
        let obj = rt.machine_mut().alloc_interleaved(8192);
        rt.run_phase(move |ctx| {
            for i in 0..20u64 {
                ctx.spawn(
                    Task::new(move |c| {
                        c.read(obj.offset(i * 256), 256);
                        c.compute(50 * (i % 5));
                    })
                    .with_affinity(AffinitySpec::task(obj.offset((i % 3) * 256))),
                );
            }
        });
        rt.trace().to_vec()
    };
    assert_eq!(run(), run());
}
