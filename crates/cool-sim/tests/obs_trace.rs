//! The observability layer on the simulator backend: recording must be
//! *pure* (bit-identical simulated cycles with tracing on or off) and the
//! per-task memory deltas must sum exactly to the PerfMonitor aggregates.

use cool_core::obs::{MemDelta, ObsEvent};
use cool_core::{AffinitySpec, ObjRef};
use cool_sim::{MachineConfig, SimConfig, SimRuntime, Task};

/// A workload that exercises every event source: hinted task-affinity sets,
/// unhinted stealable tasks, mutex contention, and real memory traffic.
fn run(cfg: SimConfig) -> (SimRuntime, cool_core::ObsTrace) {
    let mut rt = SimRuntime::new(cfg);
    let obj = rt.machine_mut().alloc_interleaved(1 << 14);
    let lock = rt.machine_mut().alloc_on_node(cool_core::NodeId(0), 64);
    rt.reset_monitor();
    rt.run_phase(move |ctx| {
        for i in 0..48u64 {
            let o = obj.offset((i % 16) * 256);
            ctx.spawn(
                Task::new(move |c| {
                    c.read(o, 128);
                    c.compute(400 + i * 13);
                    c.write(o, 32);
                })
                .with_label("worker")
                .with_affinity(AffinitySpec::task(ObjRef(0x9000 + (i % 6) * 0x40))),
            );
        }
        for i in 0..8u64 {
            let o = obj.offset(i * 512);
            ctx.spawn(
                Task::new(move |c| {
                    c.read(o, 64);
                    c.compute(2_000);
                })
                .with_label("mutexed")
                .with_mutex(lock),
            );
        }
    });
    let trace = rt.take_obs();
    (rt, trace)
}

fn cfg(nprocs: usize) -> SimConfig {
    SimConfig::new(MachineConfig::dash_small(nprocs))
}

#[test]
fn tracing_never_changes_simulated_cycles() {
    let (plain, empty) = run(cfg(8));
    let (traced, trace) = run(cfg(8).with_trace());
    assert!(empty.events.is_empty(), "tracing off records nothing");
    assert!(!trace.events.is_empty(), "tracing on records the run");
    assert_eq!(plain.elapsed(), traced.elapsed(), "cycles must not drift");
    assert_eq!(plain.stats(), traced.stats());
    assert_eq!(plain.report().mem, traced.report().mem);
}

#[test]
fn per_task_mem_deltas_sum_to_monitor_aggregates() {
    let (rt, trace) = run(cfg(8).with_trace());
    assert_eq!(trace.dropped, 0, "workload must fit the rings");
    let mut sum = MemDelta::default();
    let mut ends = 0;
    for ev in &trace.events {
        if let ObsEvent::TaskEnd { mem, .. } = ev {
            sum.accumulate(&mem.expect("simulator backend attributes memory"));
            ends += 1;
        }
    }
    assert_eq!(ends as u64, rt.stats().executed, "one end per executed task");
    let agg = rt.report().mem;
    assert_eq!(sum.refs, agg.refs);
    assert_eq!(sum.l1_hits, agg.l1_hits);
    assert_eq!(sum.l2_hits, agg.l2_hits);
    assert_eq!(sum.local_misses, agg.local_misses);
    assert_eq!(sum.remote_misses, agg.remote_misses);
}

#[test]
fn stream_covers_the_event_vocabulary() {
    let (rt, trace) = run(cfg(8).with_trace());
    let has = |f: &dyn Fn(&ObsEvent) -> bool| trace.events.iter().any(f);
    assert!(has(&|e| matches!(e, ObsEvent::TaskBegin { .. })));
    assert!(has(&|e| matches!(e, ObsEvent::TaskEnd { .. })));
    assert!(has(&|e| matches!(e, ObsEvent::SlotLink { .. })));
    assert!(has(&|e| matches!(e, ObsEvent::SlotDrain { .. })));
    assert!(has(&|e| matches!(e, ObsEvent::QueueDepth { .. })));
    if rt.stats().tasks_stolen > 0 {
        assert!(has(&|e| matches!(e, ObsEvent::StealSuccess { .. })));
    }
    if rt.stats().mutex_blocks > 0 {
        assert!(has(&|e| matches!(e, ObsEvent::MutexWait { .. })));
    }
    // Steal events agree with the scheduler's own statistics.
    let stolen: u64 = trace
        .events
        .iter()
        .filter_map(|e| match e {
            ObsEvent::StealSuccess { ntasks, .. } => Some(*ntasks as u64),
            _ => None,
        })
        .sum();
    assert_eq!(stolen, rt.stats().tasks_stolen);
    let fails = trace
        .events
        .iter()
        .filter(|e| matches!(e, ObsEvent::StealFail { .. }))
        .count() as u64;
    assert_eq!(fails, rt.stats().failed_steals);
}

#[test]
fn begin_end_pairs_nest_per_task() {
    let (_, trace) = run(cfg(4).with_trace());
    let mut open = std::collections::HashSet::new();
    for ev in &trace.events {
        match ev {
            ObsEvent::TaskBegin { task, .. } => {
                assert!(open.insert(*task), "double begin for {task:?}");
            }
            ObsEvent::TaskEnd { task, .. } => {
                assert!(open.remove(task), "end without begin for {task:?}");
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "unterminated tasks: {open:?}");
}
