//! Property-based tests for the simulated scheduler: conservation laws and
//! determinism under arbitrary affinity mixes.

use std::cell::RefCell;
use std::rc::Rc;

use cool_core::{AffinitySpec, StealPolicy};
use cool_sim::{MachineConfig, SimConfig, SimRuntime, Task};
use proptest::prelude::*;

/// Compact description of a random task for generation.
#[derive(Clone, Debug)]
struct Spec {
    affinity: u8,   // 0 none, 1 simple, 2 task, 3 object, 4 processor, 5 task+object
    arg: u8,        // object selector / processor number
    cycles: u16,    // compute cost
    mutex: bool,    // mutex on the selected object
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (0u8..6, any::<u8>(), 1u16..2000, any::<bool>()).prop_map(|(affinity, arg, cycles, mutex)| {
        Spec {
            affinity,
            arg,
            cycles,
            mutex,
        }
    })
}

fn run_specs(specs: &[Spec], nprocs: usize, policy: StealPolicy) -> (u64, Vec<u32>, String) {
    let mut rt = SimRuntime::new(
        SimConfig::new(MachineConfig::dash_small(nprocs)).with_policy(policy),
    );
    // A pool of objects spread over the nodes.
    let nobj = 16u64;
    let objs: Vec<_> = (0..nobj)
        .map(|i| {
            rt.machine_mut()
                .alloc_on_proc(i as usize % nprocs, 256)
        })
        .collect();
    let executed: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    let specs = specs.to_vec();
    let ex = executed.clone();
    rt.run_phase(move |ctx| {
        for (id, s) in specs.iter().enumerate() {
            let obj = objs[(s.arg as u64 % nobj) as usize];
            let aff = match s.affinity {
                0 => AffinitySpec::none(),
                1 => AffinitySpec::simple(obj),
                2 => AffinitySpec::task(obj),
                3 => AffinitySpec::object(obj),
                4 => AffinitySpec::processor(s.arg as usize),
                _ => AffinitySpec::task(obj).and_object(objs[(s.arg as u64 + 1) as usize % nobj as usize]),
            };
            let cycles = s.cycles as u64;
            let ex = ex.clone();
            let id = id as u32;
            let mut task = Task::new(move |c| {
                c.read(obj, 64);
                c.compute(cycles);
                c.write(obj, 8);
                ex.borrow_mut().push(id);
            })
            .with_affinity(aff);
            if s.mutex {
                task = task.with_mutex(obj);
            }
            ctx.spawn(task);
        }
    });
    let stats = rt.stats();
    let mem = rt.report().mem;
    let order = executed.borrow().clone();
    (rt.elapsed(), order, format!("{stats:?}/{mem:?}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every spawned task executes exactly once, for any affinity mix,
    /// machine size and steal policy.
    #[test]
    fn exactly_once_execution(
        specs in prop::collection::vec(spec_strategy(), 1..60),
        nprocs in 1usize..12,
        policy_sel in 0u8..3,
    ) {
        let policy = match policy_sel {
            0 => StealPolicy::default(),
            1 => StealPolicy::disabled(),
            _ => StealPolicy::cluster_only(),
        };
        let (_, executed, _) = run_specs(&specs, nprocs, policy);
        let mut ids = executed.clone();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), executed.len(), "a task ran twice");
        prop_assert_eq!(ids.len(), specs.len(), "a task was lost");
    }

    /// The simulation is a deterministic function of its inputs.
    #[test]
    fn deterministic(
        specs in prop::collection::vec(spec_strategy(), 1..40),
        nprocs in 1usize..8,
    ) {
        let a = run_specs(&specs, nprocs, StealPolicy::default());
        let b = run_specs(&specs, nprocs, StealPolicy::default());
        prop_assert_eq!(a.0, b.0, "elapsed time diverged");
        prop_assert_eq!(a.1, b.1, "execution order diverged");
        prop_assert_eq!(a.2, b.2, "statistics diverged");
    }

    /// Virtual time with P processors is never worse than serial execution
    /// by more than the scheduling overheads, and total busy work is
    /// conserved regardless of policy.
    #[test]
    fn more_processors_never_lose_badly(
        specs in prop::collection::vec(spec_strategy(), 4..40),
    ) {
        let (t1, _, _) = run_specs(&specs, 1, StealPolicy::disabled());
        let (t8, _, _) = run_specs(&specs, 8, StealPolicy::default());
        // Parallel execution may pay steal/idle overhead and remote misses,
        // but must stay within a modest constant factor of serial time.
        prop_assert!(
            t8 <= t1 * 3 + 50_000,
            "8-proc run catastrophically slower: {} vs {}",
            t8,
            t1
        );
    }
}
