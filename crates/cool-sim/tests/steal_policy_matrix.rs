//! Exhaustive behavioural matrix for the steal policies: every combination
//! of {enabled, avoid_object_affinity, steal_whole_sets, cluster_only} is
//! run over the same workload and checked against the paper's rules.

use std::cell::RefCell;
use std::rc::Rc;

use cool_core::{AffinitySpec, ObjRef, StealPolicy};
use cool_sim::{MachineConfig, SimConfig, SimRuntime, Task};

/// A hoard-on-one-server workload: 8 task-affinity sets plus 16 unhinted
/// tasks plus 8 object-affinity tasks, all initially on servers 0/1.
fn run(policy: StealPolicy) -> (cool_core::SchedStats, u64, Vec<usize>) {
    let mut cfg = SimConfig::new(MachineConfig::dash_small(8));
    cfg.policy = policy;
    let mut rt = SimRuntime::new(cfg);
    let objs: Vec<ObjRef> = (0..8)
        .map(|i| rt.machine_mut().alloc_on_proc(i % 2, 4096))
        .collect();
    let where_ran: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
    let w = where_ran.clone();
    rt.run_phase(move |ctx| {
        for round in 0..4 {
            for (i, &obj) in objs.iter().enumerate() {
                let _ = round;
                let w1 = w.clone();
                ctx.spawn(
                    Task::new(move |c| {
                        c.read(obj, 2048);
                        c.compute(3_000);
                        w1.borrow_mut().push(c.proc().index());
                    })
                    .with_affinity(AffinitySpec::task(obj).and_processor(i % 2)),
                );
            }
        }
        for i in 0..16 {
            let w2 = w.clone();
            ctx.spawn(
                Task::new(move |c| {
                    c.compute(3_000);
                    w2.borrow_mut().push(c.proc().index());
                })
                .with_affinity(AffinitySpec::processor(i % 2)),
            );
        }
        for &obj in objs.iter() {
            let w3 = w.clone();
            ctx.spawn(
                Task::new(move |c| {
                    c.read(obj, 2048);
                    c.compute(3_000);
                    w3.borrow_mut().push(c.proc().index());
                })
                .with_affinity(AffinitySpec::object(obj)),
            );
        }
    });
    let ran = where_ran.borrow().clone();
    (rt.stats(), rt.elapsed(), ran)
}

#[test]
fn every_policy_combination_completes_all_tasks() {
    for enabled in [false, true] {
        for avoid in [false, true] {
            for whole in [false, true] {
                for cluster in [false, true] {
                    let policy = StealPolicy {
                        enabled,
                        avoid_object_affinity: avoid,
                        steal_whole_sets: whole,
                        cluster_only: cluster,
                        last_resort_after: 2,
                        ..StealPolicy::default()
                    };
                    let (stats, _, ran) = run(policy);
                    assert_eq!(
                        ran.len(),
                        32 + 16 + 8,
                        "lost tasks under {policy:?}"
                    );
                    assert_eq!(stats.executed, stats.spawned, "{policy:?}");
                }
            }
        }
    }
}

#[test]
fn stealing_disabled_keeps_everything_on_the_two_hinted_servers() {
    let (stats, _, ran) = run(StealPolicy::disabled());
    assert!(ran.iter().all(|&p| p < 2), "{ran:?}");
    assert_eq!(stats.tasks_stolen, 0);
}

#[test]
fn stealing_enabled_spreads_and_speeds_up() {
    let (_, t_off, _) = run(StealPolicy::disabled());
    let (stats, t_on, ran) = run(StealPolicy::default());
    assert!(stats.tasks_stolen > 0);
    let distinct: std::collections::HashSet<usize> = ran.iter().copied().collect();
    assert!(distinct.len() > 2, "no spreading: {distinct:?}");
    assert!(
        t_on < t_off,
        "stealing should shorten the hoarded schedule: {t_on} vs {t_off}"
    );
}

#[test]
fn cluster_only_never_crosses_but_still_helps() {
    let (stats, t_on, _) = run(StealPolicy::cluster_only());
    assert_eq!(stats.remote_steals, 0);
    let (_, t_off, _) = run(StealPolicy::disabled());
    // Both hinted servers are in cluster 0 (procs 0-3 share it), so
    // in-cluster thieves alone must already improve on no stealing.
    assert!(t_on < t_off, "{t_on} vs {t_off}");
}

#[test]
fn whole_set_policy_moves_sets_single_policy_moves_tasks() {
    let whole = StealPolicy {
        steal_whole_sets: true,
        ..Default::default()
    };
    let (s_whole, _, _) = run(whole);
    let single = StealPolicy {
        steal_whole_sets: false,
        ..Default::default()
    };
    let (s_single, _, _) = run(single);
    // Whole-set mode records set steals; single mode never does.
    assert_eq!(s_single.sets_stolen, 0);
    // In whole mode, if any affinity-slot steal happened it was a set.
    if s_whole.sets_stolen > 0 {
        assert!(s_whole.tasks_stolen >= s_whole.sets_stolen);
    }
}
