//! # cool-sim — the simulated COOL runtime
//!
//! This crate implements the COOL runtime scheduler of Sections 4.2 and 5 of
//! the paper, executing on the simulated DASH machine from `dash-sim`:
//!
//! * one **server process per processor**, each owning the dual task-queue
//!   structure from `cool-core` (affinity-queue array + default queue);
//! * **affinity-directed placement**: a task is enqueued on the server chosen
//!   by its [`AffinitySpec`] (PROCESSOR > OBJECT-home > TASK-hash > creator),
//!   into the queue slot named by its affinity token — the paper's "two
//!   modulo operations";
//! * **back-to-back service** of task-affinity sets (a slot drains fully
//!   before the next is serviced);
//! * **work stealing** with the paper's policies: whole sets are stolen,
//!   object-affinity tasks are avoided, and stealing can be restricted to the
//!   thief's cluster (the `ClusterStealing` experiment of Section 6.3), with
//!   a last-resort override to guarantee progress;
//! * **mutex parallel functions**: a per-object lock serialises updates; a
//!   task finding its lock busy is set aside and retried, the server moving
//!   on to other work (COOL blocks the task, never the server);
//! * **waitfor** at phase granularity: [`SimRuntime::run_phase`] seeds a
//!   phase and runs the machine to quiescence, the virtual-clock equivalent
//!   of the `waitfor { ... }` construct wrapping a parallel loop.
//!
//! ## Execution model
//!
//! Tasks are real Rust closures: they perform the application's actual
//! computation on real data, and mirror their memory accesses into the
//! simulated machine through [`TaskCtx::read`]/[`TaskCtx::write`] (plus
//! [`TaskCtx::compute`] for pure ALU work). A task runs to completion at one
//! scheduling point (COOL tasks are non-preemptive) and its processor's
//! virtual clock advances by the cycles charged. The event loop always
//! resumes the earliest-clock server, so the interleaving — and therefore
//! every statistic — is deterministic.
//!
//! ## Example
//!
//! ```
//! use cool_sim::{SimRuntime, SimConfig, MachineConfig, Task, AffinitySpec};
//!
//! // An 8-processor DASH (two clusters of four).
//! let mut rt = SimRuntime::new(SimConfig::new(MachineConfig::dash(8)));
//! // new (5) T: allocate in processor 5's local memory.
//! let obj = rt.machine_mut().alloc_on_proc(5, 4096);
//! rt.run_phase(move |ctx| {
//!     // The task is collocated with the object's home and reads it there.
//!     ctx.spawn(
//!         Task::new(move |c| {
//!             c.read(obj, 4096);
//!             c.compute(1_000);
//!         })
//!         .with_affinity(AffinitySpec::simple(obj)),
//!     );
//! });
//! let report = rt.report();
//! assert_eq!(report.stats.executed, 2); // seed + task
//! assert!(report.stats.adherence() == 1.0);
//! // All misses were serviced in the object's local cluster memory.
//! assert_eq!(report.mem.remote_misses, 0);
//! ```

pub mod report;
pub mod runtime;
pub mod task;

pub use report::RunReport;
pub use runtime::{SimConfig, SimError, SimRuntime, TraceEvent};
pub use task::{Task, TaskCtx};

pub use cool_core::{AccessKind, AffinitySpec, FaultPlan, ObjRef, ProcId, RtEvent, StealPolicy, TaskUid};
pub use dash_sim::{MachineConfig, MissBreakdown};
