//! Tasks and the execution context their bodies run against.

use cool_core::{AccessKind, AffinitySpec, ObjRef, ProcId, RtEvent, TaskUid};

use crate::runtime::SimRuntime;

/// The body of a COOL task: real computation that mirrors its memory
/// accesses into the simulated machine via the [`TaskCtx`].
pub type TaskBody = Box<dyn FnOnce(&mut TaskCtx<'_>)>;

/// A COOL task: a parallel function invocation plus its evaluated affinity
/// block (Figure 2 of the paper).
pub struct Task {
    pub(crate) body: TaskBody,
    pub(crate) affinity: AffinitySpec,
    /// For `parallel mutex` functions: the objects requiring exclusive
    /// access, in declared acquisition order. The runtime acquires all of
    /// them before the body runs and releases them after; the *declared
    /// order* is what `cool-analyze`'s lock-order graph checks for cycles.
    pub(crate) mutexes: Vec<ObjRef>,
    /// Objects (address, bytes) to prefetch when the task is dispatched —
    /// the remote side of a multi-object affinity (Section 4.1's heuristic,
    /// Section 8's prefetching support).
    pub(crate) prefetch: Vec<(ObjRef, u64)>,
    /// Optional label recorded in the schedule trace.
    pub(crate) label: Option<&'static str>,
}

impl Task {
    /// A task with no hints (scheduled on the creating server's default
    /// queue, freely stealable).
    pub fn new(body: impl FnOnce(&mut TaskCtx<'_>) + 'static) -> Self {
        Task {
            body: Box::new(body),
            affinity: AffinitySpec::none(),
            mutexes: Vec::new(),
            prefetch: Vec::new(),
            label: None,
        }
    }

    /// Attach an affinity specification (the `[affinity(...)]` block).
    pub fn with_affinity(mut self, spec: AffinitySpec) -> Self {
        self.affinity = spec;
        self
    }

    /// Declare the task a `mutex` function on `obj`: the runtime acquires
    /// exclusive access to `obj` before running the body. May be chained to
    /// declare multiple locks; they are acquired in declaration order (the
    /// order the lock-order analyzer audits).
    pub fn with_mutex(mut self, obj: ObjRef) -> Self {
        self.mutexes.push(obj);
        self
    }

    /// Request that `(object, bytes)` pairs be prefetched into the executing
    /// processor's cache when the task is dispatched.
    pub fn with_prefetch(mut self, objects: Vec<(ObjRef, u64)>) -> Self {
        self.prefetch = objects;
        self
    }

    /// Attach a label that appears in the schedule trace (see
    /// [`crate::runtime::SimRuntime::enable_trace`]).
    pub fn with_label(mut self, label: &'static str) -> Self {
        self.label = Some(label);
        self
    }

    /// The affinity specification.
    pub fn affinity(&self) -> AffinitySpec {
        self.affinity
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("affinity", &self.affinity)
            .field("mutexes", &self.mutexes)
            .finish_non_exhaustive()
    }
}

/// The context a task body executes against: the simulated processor it runs
/// on, plus the services of the runtime (memory mirroring, spawning,
/// distribution primitives).
pub struct TaskCtx<'rt> {
    pub(crate) rt: &'rt mut SimRuntime,
    pub(crate) proc: ProcId,
    /// Identity of the executing task (for the analyzer's event stream).
    pub(crate) task: TaskUid,
    /// Cycles charged by this task so far (memory + compute + spawn costs).
    pub(crate) cycles: u64,
}

impl TaskCtx<'_> {
    /// The processor (server) executing this task.
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// This task's unique identity within the run.
    pub fn task_uid(&self) -> TaskUid {
        self.task
    }

    /// Number of servers in the machine.
    pub fn nservers(&self) -> usize {
        self.rt.nservers()
    }

    fn access(&mut self, obj: ObjRef, len: u64, kind: AccessKind) {
        let now = self.rt.clock_of(self.proc) + self.cycles;
        self.cycles += match kind {
            AccessKind::Read | AccessKind::AtomicRead => {
                self.rt.machine_mut().read_at(self.proc, obj, len, now)
            }
            AccessKind::Write | AccessKind::AtomicWrite => {
                self.rt.machine_mut().write_at(self.proc, obj, len, now)
            }
        };
        if self.rt.recording() {
            let (task, proc) = (self.task, self.proc);
            self.rt.emit(RtEvent::Access {
                task,
                obj,
                len,
                kind,
                proc,
                time: now,
            });
        }
    }

    /// Mirror a read of `len` bytes at `obj` into the machine. The access is
    /// issued at the task's current virtual time, so misses queue behind
    /// other requests contending for the servicing memory module.
    pub fn read(&mut self, obj: ObjRef, len: u64) {
        self.access(obj, len, AccessKind::Read);
    }

    /// Mirror a write of `len` bytes at `obj` into the machine.
    pub fn write(&mut self, obj: ObjRef, len: u64) {
        self.access(obj, len, AccessKind::Write);
    }

    /// Mirror a *relaxed atomic* read: same machine traffic and cost as
    /// [`TaskCtx::read`], but declared race-exempt against other atomics for
    /// the analyzer (LocusRoute's deliberately stale CostArray lookups).
    pub fn read_atomic(&mut self, obj: ObjRef, len: u64) {
        self.access(obj, len, AccessKind::AtomicRead);
    }

    /// Mirror a *relaxed atomic* write (e.g. an occupancy-count increment):
    /// same machine traffic and cost as [`TaskCtx::write`], but race-exempt
    /// against other atomics.
    pub fn write_atomic(&mut self, obj: ObjRef, len: u64) {
        self.access(obj, len, AccessKind::AtomicWrite);
    }

    /// Charge `cycles` of pure computation.
    pub fn compute(&mut self, cycles: u64) {
        self.cycles += self.rt.machine_mut().compute(self.proc, cycles);
    }

    /// A release-acquire synchronisation point on `token`, modelling the
    /// runtime-internal completion counters and ready flags a dataflow
    /// program consults before spawning dependent work. Costs no cycles and
    /// generates no machine traffic; it only informs the happens-before
    /// analysis. Call it after this task's publishing writes and before any
    /// spawn decision that observes other tasks' completion.
    pub fn sync(&mut self, token: ObjRef) {
        if self.rt.recording() {
            let (task, time) = (self.task, self.rt.clock_of(self.proc) + self.cycles);
            self.rt.emit(RtEvent::Sync { task, token, time });
        }
    }

    /// Spawn a child task (a parallel function invocation). The child's
    /// affinity block is evaluated immediately and the task enqueued on its
    /// target server; a small spawn cost is charged to the caller.
    pub fn spawn(&mut self, task: Task) {
        let parent = self.task;
        self.cycles += self.rt.spawn_from(self.proc, Some(parent), task);
    }

    /// `home()`: the server collocated with `obj`'s memory.
    pub fn home(&self, obj: ObjRef) -> ProcId {
        self.rt.home_proc(obj)
    }

    /// `migrate()`: move `bytes` at `obj` to processor `n % nservers`'s
    /// local memory, charging the migration cost to this task.
    ///
    /// Under the adaptive migration throttle ([`cool_core::feedback`]) the
    /// request is ignored while the observed remote-miss rate says the
    /// data is not actually remote — placement is a performance hint in
    /// COOL, never a correctness requirement, so dropping a `migrate` can
    /// only change costs.
    pub fn migrate(&mut self, obj: ObjRef, bytes: u64, n: usize) {
        if !self.rt.migration_gate() {
            return;
        }
        let c = self.rt.machine_mut().migrate_to_proc(obj, bytes, n);
        self.cycles += self.rt.machine_mut().compute(self.proc, c);
        if self.rt.recording() {
            let task = self.task;
            let to = ProcId(n % self.rt.nservers());
            let time = self.rt.clock_of(self.proc) + self.cycles;
            self.rt.emit(RtEvent::Migrate {
                task,
                obj,
                bytes,
                to,
                time,
            });
        }
        if self.rt.obs_on() {
            self.rt.obs_emit(cool_core::obs::ObsEvent::Migrate {
                task: self.task,
                obj,
                bytes,
                to: ProcId(n % self.rt.nservers()),
                time: self.rt.clock_of(self.proc) + self.cycles,
            });
        }
    }
}
