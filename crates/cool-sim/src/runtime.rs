//! The simulated runtime: servers, virtual-time event loop, scheduling.

use std::collections::HashMap;

use cool_core::obs::{MemDelta, ObsEvent, ObsRecorder, ObsTrace};
use cool_core::{
    AdaptiveConfig, AffinityKind, ClusterId, FaultPlan, NodeId, ObjRef, PolicyFeedback, ProcId,
    RebalanceConfig, RtEvent, SchedStats, ServerQueues, StealPolicy, TaskUid, Topology,
    VictimOrders,
};
use dash_sim::{Machine, MachineConfig};

use crate::report::RunReport;
use crate::task::{Task, TaskCtx};

/// An internal scheduling invariant was violated (the simulator tried to
/// dispatch from an empty queue). Carries enough state for a post-mortem:
/// which server, what was still pending, and where the clocks stood.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimError {
    /// Server whose dispatch failed.
    pub proc: ProcId,
    /// Tasks the scheduler still believed were queued somewhere.
    pub pending: usize,
    /// Actual queue depth per server at failure time.
    pub queue_depths: Vec<usize>,
    /// Virtual clock per server at failure time.
    pub clocks: Vec<u64>,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dispatch on empty queue at server {} (pending={}; depths=",
            self.proc.index(),
            self.pending
        )?;
        for (p, d) in self.queue_depths.iter().enumerate() {
            if p > 0 {
                write!(f, ",")?;
            }
            write!(f, "s{p}={d}")?;
        }
        write!(f, "; clocks=")?;
        for (p, c) in self.clocks.iter().enumerate() {
            if p > 0 {
                write!(f, ",")?;
            }
            write!(f, "s{p}={c}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for SimError {}

/// Runtime configuration: the machine plus scheduler knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Work-stealing policy.
    pub policy: StealPolicy,
    /// Affinity-queue array size per server (Section 5: "collisions ... can
    /// be minimized by choosing a suitably large array size").
    pub affinity_slots: usize,
    /// Cycles to probe one victim's queues during a steal scan.
    pub steal_probe_cost: u64,
    /// Cycles to transfer a stolen batch.
    pub steal_xfer_cost: u64,
    /// Cycles burned when a mutex task is found blocked and set aside.
    pub mutex_retry_cost: u64,
    /// Cycles charged to a creator per spawn (task creation is lightweight
    /// in COOL; this covers descriptor setup + enqueue).
    pub spawn_cost: u64,
    /// Record an [`RtEvent`] stream for `cool-analyze` (happens-before race
    /// detection, lock-order audit, affinity lints). Off by default: when
    /// disabled the instrumentation is a branch on a `None`.
    pub record_events: bool,
    /// Record the scheduler observability stream ([`ObsEvent`]): task
    /// begin/end with PerfMonitor deltas, steals, slot transitions, mutex
    /// waits, queue-depth samples. Off by default; recording is pure (it
    /// never changes simulated cycles) and zero-cost when disabled.
    pub record_trace: bool,
    /// Validate the machine's coherence invariants (SWMR, directory/cache
    /// agreement, lost invalidations, tracked-count conservation, lookaside
    /// soundness) on every coherence transition, plus a full-state sweep at
    /// each phase boundary. Violations are collected on the machine
    /// (`machine().violations()`), never panicked. Off by default; checking
    /// is an observer — it cannot change the simulated schedule.
    pub check_coherence: bool,
    /// Closed-loop policy adaptation (see [`cool_core::feedback`]): steal
    /// ceilings widen under observed starvation, `migrate` is throttled by
    /// the observed remote-miss rate, and steal scans are probe-capped by
    /// observed queue depth. `None` (the default) keeps every policy knob
    /// static and the config fingerprint byte-identical to the pre-adaptive
    /// schema.
    pub adaptive: Option<AdaptiveConfig>,
    /// Phase-boundary global rebalancer: at each `waitfor` boundary, pages
    /// whose observed cross-cluster miss traffic says they live on the
    /// wrong cluster are re-homed when the modelled cycle saving beats the
    /// migration cost by the configured margin. `None` (the default)
    /// disables the pass and keeps the fingerprint unchanged.
    pub rebalance: Option<RebalanceConfig>,
}

impl SimConfig {
    /// Defaults for a given machine.
    pub fn new(machine: MachineConfig) -> Self {
        SimConfig {
            machine,
            policy: StealPolicy::default(),
            affinity_slots: 64,
            steal_probe_cost: 30,
            steal_xfer_cost: 100,
            mutex_retry_cost: 20,
            spawn_cost: 20,
            record_events: false,
            record_trace: false,
            check_coherence: false,
            adaptive: None,
            rebalance: None,
        }
    }

    /// Replace the steal policy.
    pub fn with_policy(mut self, policy: StealPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable event recording (see [`SimConfig::record_events`]).
    pub fn with_events(mut self) -> Self {
        self.record_events = true;
        self
    }

    /// Enable observability tracing (see [`SimConfig::record_trace`]).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enable coherence-invariant checking (see
    /// [`SimConfig::check_coherence`]).
    pub fn with_checked(mut self) -> Self {
        self.check_coherence = true;
        self
    }

    /// Enable closed-loop policy adaptation (see [`SimConfig::adaptive`]).
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// Enable the phase-boundary rebalancer (see [`SimConfig::rebalance`]).
    pub fn with_rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = Some(rebalance);
        self
    }

    /// A compact, stable fingerprint of every knob that influences the
    /// simulated schedule: the machine, the steal policy, and the scheduler
    /// cost constants. Recording and checking flags are deliberately
    /// excluded — they are observers, never inputs (recording or checking
    /// a run must not change it). `cool-repro` hashes this into its
    /// memoization key. The adaptive and rebalance segments are appended
    /// only when configured, so every static configuration's fingerprint
    /// stays byte-identical to the pre-adaptive schema (committed sweep
    /// records keep verifying).
    pub fn fingerprint(&self) -> String {
        let mut s = format!(
            "{} {} slots={} probe={} xfer={} mrt={} spawn={}",
            self.machine.fingerprint(),
            self.policy.fingerprint(),
            self.affinity_slots,
            self.steal_probe_cost,
            self.steal_xfer_cost,
            self.mutex_retry_cost,
            self.spawn_cost,
        );
        if let Some(a) = &self.adaptive {
            s.push(' ');
            s.push_str(&a.fingerprint());
        }
        if let Some(r) = &self.rebalance {
            s.push(' ');
            s.push_str(&r.fingerprint());
        }
        s
    }
}

/// A task bound to its scheduling decision.
struct SimTask {
    task: Task,
    /// Unique identity of this task instance (for the event stream).
    uid: TaskUid,
    /// Server the affinity hint selected (for adherence statistics).
    target: ProcId,
    /// Whether any hint was supplied.
    hinted: bool,
    /// This task's first dispatch must fail (transient injected fault).
    inject: bool,
    /// Already rotated at least once on a held mutex (stats tell first
    /// blocks apart from retries).
    blocked_before: bool,
}

/// One executed task in the schedule trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Server the task ran on.
    pub proc: ProcId,
    /// The task's label (or "task").
    pub label: &'static str,
    /// Dispatch-complete virtual time.
    pub start: u64,
    /// Completion virtual time.
    pub end: u64,
    /// Whether the task arrived by stealing... reported as: ran on its
    /// hinted target server.
    pub on_target: bool,
}

/// The simulated COOL runtime. See the crate docs for the execution model.
pub struct SimRuntime {
    cfg: SimConfig,
    machine: Machine,
    topology: Topology,
    /// Precomputed per-thief victim orders with common-ancestor levels
    /// (`steal_order` allocated on the idle/steal hot path).
    victims: VictimOrders,
    queues: Vec<ServerQueues<SimTask>>,
    clocks: Vec<u64>,
    stats: SchedStats,
    /// Virtual time at which each mutex object's lock becomes free.
    locks: HashMap<ObjRef, u64>,
    /// Tasks currently queued anywhere (phase termination condition).
    pending: usize,
    /// Consecutive failed steal scans per server (drives last-resort mode).
    failed_scans: Vec<usize>,
    /// Consecutive blocked-rotation dispatches per server, plus the earliest
    /// lock-release time seen, to jump the clock over a convoy.
    rotations: Vec<(usize, u64)>,
    /// Schedule trace, when enabled.
    trace: Option<Vec<TraceEvent>>,
    /// Fault-injection plan (one plan unit = one cycle), if set.
    faults: Option<FaultPlan>,
    /// Global spawn counter for the plan's fail-spawn indices.
    fault_spawns: u64,
    /// Per-server executed-dispatch counters for the plan's stalls.
    fault_dispatches: Vec<u64>,
    /// Analyzer event stream, when recording is enabled.
    events: Option<Vec<RtEvent>>,
    /// Observability recorder, when tracing is enabled.
    obs: Option<ObsRecorder>,
    /// Next task uid (0 is the root context).
    next_uid: u64,
    /// Phase counter for `PhaseBegin`/`PhaseEnd` events.
    phase_seq: u32,
    /// Closed-loop policy aggregator, when adaptation is enabled. The
    /// virtual-time event loop is single-threaded, so one global aggregator
    /// sees the same deterministic task-boundary order on every run.
    feedback: Option<PolicyFeedback>,
    /// Reference-mix snapshot (refs, remote misses) per server at the last
    /// feedback sample, for per-task deltas.
    feedback_snap: Vec<(u64, u64)>,
}

impl SimRuntime {
    /// Build a cold runtime (cold caches, empty queues, zero clocks).
    pub fn new(cfg: SimConfig) -> Self {
        let n = cfg.machine.nprocs;
        let mut machine = Machine::new(cfg.machine);
        if cfg.check_coherence {
            machine.enable_checked();
        }
        if cfg.rebalance.is_some() {
            machine.enable_traffic();
        }
        let topology = cfg.machine.topology();
        SimRuntime {
            machine,
            topology: cfg.machine.topology(),
            victims: cfg.machine.topology().victim_orders(),
            queues: (0..n).map(|_| ServerQueues::new(cfg.affinity_slots)).collect(),
            clocks: vec![0; n],
            stats: SchedStats::default(),
            locks: HashMap::new(),
            pending: 0,
            failed_scans: vec![0; n],
            rotations: vec![(0, u64::MAX); n],
            trace: None,
            faults: None,
            fault_spawns: 0,
            fault_dispatches: vec![0; n],
            events: if cfg.record_events { Some(Vec::new()) } else { None },
            obs: if cfg.record_trace {
                Some(ObsRecorder::with_default_capacity(n))
            } else {
                None
            },
            next_uid: 1,
            phase_seq: 0,
            feedback: cfg
                .adaptive
                .map(|a| PolicyFeedback::new(a, topology.nlevels())),
            feedback_snap: vec![(0, 0); n],
            cfg,
        }
    }

    /// Start recording the analyzer event stream (equivalent to constructing
    /// with [`SimConfig::record_events`] set).
    pub fn enable_events(&mut self) {
        if self.events.is_none() {
            self.events = Some(Vec::new());
        }
    }

    /// Whether the event stream is being recorded.
    pub(crate) fn recording(&self) -> bool {
        self.events.is_some()
    }

    /// Append an event to the stream (no-op when recording is off).
    pub(crate) fn emit(&mut self, ev: RtEvent) {
        if let Some(buf) = &mut self.events {
            buf.push(ev);
        }
    }

    /// The recorded event stream (empty if recording was never enabled).
    pub fn events(&self) -> &[RtEvent] {
        self.events.as_deref().unwrap_or(&[])
    }

    /// Take ownership of the recorded event stream, leaving recording
    /// enabled with an empty buffer if it was on.
    pub fn take_events(&mut self) -> Vec<RtEvent> {
        match &mut self.events {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// Start recording the observability stream (equivalent to constructing
    /// with [`SimConfig::record_trace`] set).
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(ObsRecorder::with_default_capacity(self.topology.nservers));
        }
    }

    /// Whether the observability stream is being recorded.
    #[inline]
    pub(crate) fn obs_on(&self) -> bool {
        self.obs.is_some()
    }

    /// Record an observability event (no-op when tracing is off). Events
    /// are ringed under the processor they are attributed to; the recorder's
    /// global sequence keeps the merged order.
    pub(crate) fn obs_emit(&self, ev: ObsEvent) {
        if let Some(rec) = &self.obs {
            rec.record(ev.proc().index(), ev);
        }
    }

    /// Drain the recorded observability stream (empty if tracing was never
    /// enabled). Recording stays on with empty rings.
    pub fn take_obs(&mut self) -> ObsTrace {
        match &self.obs {
            Some(rec) => rec.drain(),
            None => ObsTrace::default(),
        }
    }

    /// Perturb subsequent scheduling with a deterministic fault plan (one
    /// plan unit = one simulated cycle). Straggler and stall delays advance
    /// the victim's virtual clock as idle time; injected task failures abort
    /// the task's first dispatch before the body runs and requeue it, so
    /// results stay correct and two same-seed runs are bit-identical.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Start recording a schedule trace: every executed task is logged with
    /// its server, label and virtual time interval. Useful for visualising
    /// back-to-back affinity-set service and steal-induced migration.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace (empty if tracing was never enabled).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Number of servers (= processors).
    pub fn nservers(&self) -> usize {
        self.topology.nservers
    }

    /// The scheduler topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The simulated machine (for setup-time allocation etc.).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// `home()` resolved to a server.
    pub fn home_proc(&self, obj: ObjRef) -> ProcId {
        self.machine.home_proc(obj)
    }

    /// The current virtual clock of one server.
    pub fn clock_of(&self, p: ProcId) -> u64 {
        self.clocks[p.index()]
    }

    /// Elapsed virtual time: the latest processor clock.
    pub fn elapsed(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }

    /// Scheduling statistics so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Zero the machine's performance monitor (e.g. after initialisation, so
    /// reports cover only the parallel section, as the paper measures).
    pub fn reset_monitor(&mut self) {
        self.machine.monitor_mut().reset();
    }

    /// Full report of the run so far.
    pub fn report(&self) -> RunReport {
        let total = self.machine.monitor().total();
        RunReport {
            nprocs: self.nservers(),
            elapsed: self.elapsed(),
            stats: self.stats,
            mem: self.machine.monitor().breakdown(),
            busy_cycles: total.busy_cycles,
            idle_cycles: total.idle_cycles,
            overhead_cycles: total.overhead_cycles,
            coherence_transitions: self.machine.transitions_checked(),
            coherence_violations: self.machine.violation_count(),
            contention: self.machine.contention_stats(),
            topology: self.topology,
        }
    }

    /// Spawn a task from outside any task (phase seeding). The creator is
    /// taken to be server 0.
    pub fn spawn(&mut self, task: Task) {
        self.spawn_from(ProcId(0), None, task);
    }

    /// Spawn from `creator`, resolving the affinity block to a target server
    /// and queue slot. `parent` is the spawning task's identity (`None` for
    /// external spawns). Returns the cycles to charge the creator.
    pub(crate) fn spawn_from(
        &mut self,
        creator: ProcId,
        parent: Option<TaskUid>,
        task: Task,
    ) -> u64 {
        let spec = task.affinity;
        let hinted = spec.is_hinted();
        let machine = &self.machine;
        let target = spec.resolve_server(self.topology.nservers, creator, |o| {
            machine.home_proc(o)
        });
        let kind = spec.kind();
        let inject = match &self.faults {
            Some(plan) => {
                let idx = self.fault_spawns;
                self.fault_spawns += 1;
                plan.should_fail(idx)
            }
            None => false,
        };
        let uid = TaskUid(self.next_uid);
        self.next_uid += 1;
        if self.recording() {
            self.emit(RtEvent::Spawn {
                parent,
                child: uid,
                label: task.label,
                object: spec.object,
                target,
                time: self.clocks[creator.index()],
            });
        }
        let st = SimTask {
            task,
            uid,
            target,
            hinted,
            inject,
            blocked_before: false,
        };
        self.push_local(target, kind, st);
        self.pending += 1;
        self.stats.spawned += 1;
        self.machine.monitor_mut().proc_mut(creator.index()).overhead_cycles +=
            self.cfg.spawn_cost;
        self.cfg.spawn_cost
    }

    /// Enqueue a task on server `p`'s queues, emitting a slot-link event
    /// when a new task-affinity set starts queueing.
    fn push_local(&mut self, p: ProcId, kind: AffinityKind, st: SimTask) {
        let token = st.task.affinity.queue_token();
        match token {
            Some(tok) => {
                let up = self.queues[p.index()].push_affinity(tok, kind, st);
                if up.newly_linked {
                    if let Some(slot) = up.slot {
                        self.obs_emit(ObsEvent::SlotLink {
                            proc: p,
                            slot,
                            token: tok,
                            time: self.clocks[p.index()],
                        });
                    }
                }
            }
            None => self.queues[p.index()].push_default(kind, st),
        }
    }

    /// Run one phase to quiescence: execute `seed` as a task on server 0,
    /// then keep scheduling until every transitively-spawned task has
    /// completed. This is the `waitfor { ... }` construct: control returns
    /// only when the phase's task tree is done.
    ///
    /// Panics if the scheduler violates an internal invariant; use
    /// [`SimRuntime::try_run_phase`] to get the diagnostic [`SimError`]
    /// instead.
    pub fn run_phase(&mut self, seed: impl FnOnce(&mut TaskCtx<'_>) + 'static) {
        if let Err(e) = self.try_run_phase(seed) {
            panic!("simulator scheduling failed: {e}");
        }
    }

    /// Fallible form of [`SimRuntime::run_phase`]: scheduling invariant
    /// violations come back as a structured [`SimError`] carrying queue
    /// depths and clocks instead of a panic.
    pub fn try_run_phase(
        &mut self,
        seed: impl FnOnce(&mut TaskCtx<'_>) + 'static,
    ) -> Result<(), SimError> {
        self.phase_seq += 1;
        let seq = self.phase_seq;
        self.emit(RtEvent::PhaseBegin { seq });
        self.spawn(Task::new(seed).with_label("phase-seed"));
        let out = self.drain();
        // Phase boundary: run the contention engine's calendar dry so a
        // trailing prefetch burst is accounted before reports are cut (a
        // no-op in zero-contention mode).
        self.machine.flush_contention();
        // Phase boundary: globally rebalance page homes against the phase's
        // observed traffic (a no-op unless `SimConfig::rebalance` is set).
        self.rebalance_pages();
        if self.cfg.check_coherence {
            // Phase boundary: global invariants (tracked-count
            // conservation, reverse tag agreement) on the settled state.
            self.machine.check_full();
        }
        self.emit(RtEvent::PhaseEnd { seq });
        out
    }

    /// The event loop: repeatedly act on the earliest-clock server.
    fn drain(&mut self) -> Result<(), SimError> {
        while self.pending > 0 {
            let p = self.min_clock_server();
            if !self.queues[p.index()].is_empty() {
                self.dispatch(p)?;
            } else {
                self.try_steal_or_idle(p)?;
            }
        }
        Ok(())
    }

    /// The server with the earliest clock (ties broken by id) — the next one
    /// to act in virtual time.
    fn min_clock_server(&self) -> ProcId {
        let mut best = 0;
        for q in 1..self.clocks.len() {
            if self.clocks[q] < self.clocks[best] {
                best = q;
            }
        }
        ProcId(best)
    }

    /// Pop and run (or rotate) the next local task on `p`.
    fn dispatch(&mut self, p: ProcId) -> Result<(), SimError> {
        let pi = p.index();
        if self.obs_on() {
            self.obs_emit(ObsEvent::QueueDepth {
                proc: p,
                depth: self.queues[pi].len(),
                time: self.clocks[pi],
            });
        }
        let popped = match self.queues[pi].pop_local_info() {
            Some(popped) => popped,
            None => {
                return Err(SimError {
                    proc: p,
                    pending: self.pending,
                    queue_depths: self.queues.iter().map(|q| q.len()).collect(),
                    clocks: self.clocks.clone(),
                })
            }
        };
        if popped.drained {
            if let Some(slot) = popped.slot {
                self.obs_emit(ObsEvent::SlotDrain {
                    proc: p,
                    slot,
                    time: self.clocks[pi],
                });
            }
        }
        let (kind, mut st) = (popped.kind, popped.payload);
        self.clocks[pi] += self.cfg.machine.dispatch_overhead;
        self.machine.monitor_mut().proc_mut(pi).overhead_cycles +=
            self.cfg.machine.dispatch_overhead;

        // Transient injected failure: consume it before the body runs and
        // requeue the task untouched, so it still executes exactly once.
        if st.inject {
            st.inject = false;
            self.stats.injected_faults += 1;
            self.push_local(p, kind, st);
            return Ok(());
        }

        // Mutex parallel function: check the object locks (all of the task's
        // declared locks must be free; the latest release gates entry).
        if !st.task.mutexes.is_empty() {
            let free_at = st
                .task
                .mutexes
                .iter()
                .map(|l| *self.locks.get(l).unwrap_or(&0))
                .max()
                .unwrap_or(0);
            if free_at > self.clocks[pi] {
                // Blocked: set the task aside (back of its queue) and let the
                // server pick other work. COOL blocks the task, not the
                // server.
                if self.obs_on() {
                    // Attribute the wait to the lock gating entry (the one
                    // released last).
                    let lock = st
                        .task
                        .mutexes
                        .iter()
                        .copied()
                        .max_by_key(|l| *self.locks.get(l).unwrap_or(&0))
                        .expect("blocked task must declare a mutex");
                    self.obs_emit(ObsEvent::MutexWait {
                        task: st.uid,
                        lock,
                        proc: p,
                        time: self.clocks[pi],
                    });
                }
                if st.blocked_before {
                    self.stats.mutex_retries += 1;
                } else {
                    self.stats.mutex_blocks += 1;
                }
                st.blocked_before = true;
                self.clocks[pi] += self.cfg.mutex_retry_cost;
                let (rot, earliest) = &mut self.rotations[pi];
                *rot += 1;
                *earliest = (*earliest).min(free_at);
                let full_cycle = *rot > self.queues[pi].len();
                let jump_to = *earliest;
                if full_cycle {
                    // Everything runnable was tried; jump to the first lock
                    // release so we stop spinning.
                    let idle = jump_to.saturating_sub(self.clocks[pi]);
                    self.machine.monitor_mut().proc_mut(pi).idle_cycles += idle;
                    self.clocks[pi] = self.clocks[pi].max(jump_to);
                    self.rotations[pi] = (0, u64::MAX);
                }
                self.push_local(p, kind, st);
                return Ok(());
            }
        }
        self.rotations[pi] = (0, u64::MAX);
        self.failed_scans[pi] = 0;
        self.execute(p, st);
        Ok(())
    }

    /// Run a task body to completion on `p`, advancing its clock.
    fn execute(&mut self, p: ProcId, mut st: SimTask) {
        let pi = p.index();
        if let Some(plan) = &self.faults {
            // Straggler surcharge plus any one-shot stall scheduled for this
            // dispatch number, charged as idle time before the body.
            let nth = self.fault_dispatches[pi];
            self.fault_dispatches[pi] += 1;
            let delay = plan.slow_units(pi) + plan.stall_units(pi, nth);
            if delay > 0 {
                self.clocks[pi] += delay;
                self.machine.monitor_mut().proc_mut(pi).idle_cycles += delay;
            }
        }
        self.pending -= 1;
        self.stats.executed += 1;
        if st.hinted {
            self.stats.hinted += 1;
            if st.target == p {
                self.stats.affinity_hits += 1;
            }
        }
        let start = self.clocks[pi];
        // The task is consumed by this dispatch, so take its lock list rather
        // than cloning it (this runs once per executed task).
        let mutexes = std::mem::take(&mut st.task.mutexes);
        // Issue the task's prefetches before the body runs: their latency
        // overlaps the first part of the execution.
        let mut prefetch_cycles = 0;
        for (obj, bytes) in std::mem::take(&mut st.task.prefetch) {
            let cost = self.machine.prefetch(p, obj, bytes, start + prefetch_cycles);
            prefetch_cycles += cost;
            if self.recording() {
                self.emit(RtEvent::Prefetch {
                    task: st.uid,
                    obj,
                    bytes,
                    cost,
                    time: start,
                });
            }
        }
        self.clocks[pi] += prefetch_cycles;
        let start = self.clocks[pi];
        if self.recording() {
            // Only when the object actually drove placement (no PROCESSOR
            // override): then `target == home(object)` held at spawn time and
            // a mismatch at dispatch means the object migrated in between.
            let object = if st.task.affinity.processor.is_none() {
                st.task.affinity.object
            } else {
                None
            };
            let object_home = object.map(|o| self.machine.home_proc(o));
            self.emit(RtEvent::TaskStart {
                task: st.uid,
                proc: p,
                target: st.target,
                object,
                object_home,
                time: start,
            });
            for &lock in &mutexes {
                self.emit(RtEvent::MutexAcquire {
                    task: st.uid,
                    lock,
                    time: start,
                });
            }
        }
        // Observability: task begin, plus a snapshot of the processor's
        // reference counters so the end event can carry the body's exact
        // cache/local/remote delta (the counters only move inside
        // `Machine::reference`, i.e. inside task bodies).
        let ref_snap = if self.obs_on() {
            self.obs_emit(ObsEvent::TaskBegin {
                task: st.uid,
                label: st.task.label,
                proc: p,
                set: st.task.affinity.queue_token(),
                hinted: st.hinted,
                on_target: st.target == p,
                time: start,
            });
            Some(self.machine.monitor().proc(pi).ref_mix())
        } else {
            None
        };
        // Feedback sampling: snapshot this server's reference mix so the
        // completion boundary can feed the body's exact refs/remote-miss
        // delta into the adaptive control loop.
        if self.feedback.is_some() {
            let m = self.machine.monitor().proc(pi).ref_mix();
            self.feedback_snap[pi] = (m[0], m[4]);
        }
        let body = st.task.body;
        let mut ctx = TaskCtx {
            rt: self,
            proc: p,
            task: st.uid,
            cycles: 0,
        };
        let label = st.task.label;
        let hinted_target = st.target;
        body(&mut ctx);
        let duration = ctx.cycles;
        self.clocks[pi] = start + duration;
        for &lock_obj in &mutexes {
            self.locks.insert(lock_obj, start + duration);
        }
        if self.recording() {
            for &lock in mutexes.iter().rev() {
                self.emit(RtEvent::MutexRelease {
                    task: st.uid,
                    lock,
                    time: start + duration,
                });
            }
            self.emit(RtEvent::TaskEnd {
                task: st.uid,
                proc: p,
                time: start + duration,
            });
        }
        if let Some(snap) = ref_snap {
            let now = self.machine.monitor().proc(pi).ref_mix();
            self.obs_emit(ObsEvent::TaskEnd {
                task: st.uid,
                proc: p,
                mem: Some(MemDelta {
                    refs: now[0] - snap[0],
                    l1_hits: now[1] - snap[1],
                    l2_hits: now[2] - snap[2],
                    local_misses: now[3] - snap[3],
                    remote_misses: now[4] - snap[4],
                }),
                time: start + duration,
            });
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                proc: p,
                label: label.unwrap_or("task"),
                start,
                end: start + duration,
                on_target: hinted_target == p,
            });
        }
        // Task-boundary feedback sample: controls only ever change here
        // (at window boundaries), so the adaptive schedule stays a pure
        // function of the deterministic task order.
        if let Some(fb) = self.feedback.as_mut() {
            let m = self.machine.monitor().proc(pi).ref_mix();
            let (refs0, rem0) = self.feedback_snap[pi];
            let depth = self.queues[pi].len();
            if fb.note_task(m[0] - refs0, m[4] - rem0, depth) {
                self.stats.adaptive_widenings += 1;
            }
        }
    }

    /// The adaptive migration gate, consulted by [`TaskCtx::migrate`]:
    /// `true` means proceed; `false` means the feedback loop vetoed the
    /// move (counted into `SchedStats::throttled_migrations`).
    pub(crate) fn migration_gate(&mut self) -> bool {
        match &self.feedback {
            Some(fb) if !fb.migration_open() => {
                self.stats.throttled_migrations += 1;
                false
            }
            _ => true,
        }
    }

    /// The phase-boundary global rebalancer: re-home pages whose observed
    /// cross-cluster miss traffic says they were placed on the wrong
    /// cluster.
    ///
    /// For every page the closing phase touched, the pass compares the
    /// modelled communication cost of that traffic under the current home
    /// against the dominant requesting cluster (ties to the lowest index),
    /// using the machine's per-level latency tables — the same cost model
    /// the miss path charges. A page moves only when the modelled cycle
    /// saving clears the page-migration cost by the configured margin; the
    /// move's cycles are charged (clock and overhead) to the destination
    /// cluster's lead processor, and traffic counters reset so the next
    /// phase's decisions see only its own behaviour. Scanning traffic in
    /// page order with deterministic tie-breaks keeps the pass a pure
    /// function of the (deterministic) schedule.
    fn rebalance_pages(&mut self) {
        let Some(rb) = self.cfg.rebalance else { return };
        let mcfg = &self.cfg.machine;
        let nclusters = mcfg.nclusters();
        let page_bytes = self.machine.space().page_bytes();
        // Decide first (immutable scan), then apply: the borrow of the
        // traffic table cannot overlap the migrations.
        let mut moves: Vec<(u64, usize, u64)> = Vec::new();
        if let Some(tr) = self.machine.traffic() {
            // Page 0 is the reserved null page — never allocated, never
            // moved.
            for page in 1..tr.pages() {
                let home = self.machine.space().home(ObjRef(page as u64 * page_bytes));
                let mut best = home.index();
                let mut best_count = 0u32;
                for c in 0..nclusters {
                    let n = tr.count(page, c);
                    if n > best_count {
                        best = c;
                        best_count = n;
                    }
                }
                if best == home.index() || best_count < rb.min_remote {
                    continue;
                }
                // Modelled saving of serving the phase's traffic from `best`
                // instead of `home` (the home cluster's own accesses turning
                // remote enter as a negative term).
                let mut gain = 0i64;
                for c in 0..nclusters {
                    let n = i64::from(tr.count(page, c));
                    if n == 0 {
                        continue;
                    }
                    let d_home = mcfg.cluster_distance(ClusterId(c), ClusterId(home.index()));
                    let d_best = mcfg.cluster_distance(ClusterId(c), ClusterId(best));
                    gain +=
                        n * (mcfg.mem_latency(d_home) as i64 - mcfg.mem_latency(d_best) as i64);
                }
                if gain <= 0 {
                    continue;
                }
                let cost = mcfg.page_migrate_cost;
                if (gain as u64) * 1000 < cost * u64::from(rb.margin_permille) {
                    continue;
                }
                moves.push((page as u64, best, u64::from(best_count)));
            }
        }
        for (page, dest, misses) in moves {
            let obj = ObjRef(page * page_bytes);
            let cost = self.machine.migrate_to_node(obj, page_bytes, NodeId(dest));
            let lead = self.cfg.machine.proc_of_node(NodeId(dest));
            let li = lead.index();
            self.clocks[li] += cost;
            self.machine.monitor_mut().proc_mut(li).overhead_cycles += cost;
            self.stats.rebalanced_pages += 1;
            self.obs_emit(ObsEvent::Rebalance {
                obj,
                to: lead,
                misses,
                time: self.clocks[li],
            });
        }
        self.machine.reset_traffic();
    }

    /// Steal scan for an idle server, or advance its clock past the next
    /// event if nothing is stealable.
    fn try_steal_or_idle(&mut self, p: ProcId) -> Result<(), SimError> {
        let pi = p.index();
        if let Some(plan) = &self.faults {
            // Injected fault: a processor slow to notice new work.
            let delay = plan.wakeup_units(pi);
            if delay > 0 {
                self.clocks[pi] += delay;
                self.machine.monitor_mut().proc_mut(pi).idle_cycles += delay;
            }
        }
        let policy = self.cfg.policy;
        if policy.enabled {
            let desperate = self.failed_scans[pi] >= policy.last_resort_after;
            // Locality ceilings are strict: the whole point of the Section
            // 6.3 experiment is that stolen tasks keep referencing their
            // objects in cluster-local memory, so desperation lifts only
            // the object-affinity avoidance, never the cluster boundary
            // (or its generalizations: the per-level radius, and the polite
            // widening that raises itself one level per failed scan).
            let allowed = policy.allowed_level(&self.topology, self.failed_scans[pi]);
            // Adaptive widening: the feedback loop lifts the static ceiling
            // by whole topology levels while observed steal failure shows
            // starvation (and decays it back once steals succeed). The
            // probe cap bounds how many victims this scan may touch.
            let (allowed, probe_cap) = match &self.feedback {
                Some(fb) => (
                    allowed.saturating_add(fb.extra_levels()),
                    fb.probe_cap() as u64,
                ),
                None => (allowed, u64::MAX),
            };
            let mem_level = self.topology.mem_level() as u8;
            let mut probes = 0u64;
            for i in 0..self.victims.len_per_thief() {
                let (v, lvl) = self.victims.entry(p, i);
                if (lvl as usize) > allowed {
                    continue;
                }
                if probes >= probe_cap {
                    break;
                }
                let cross_cluster = lvl > mem_level;
                probes += 1;
                let avoid_object = policy.avoid_object_affinity && !desperate;
                if let Some(batch) =
                    self.queues[v.index()].steal_with(avoid_object, policy.steal_whole_sets)
                {
                    let n = batch.tasks.len() as u64;
                    let stolen_token = batch.token;
                    self.stats.tasks_stolen += n;
                    if batch.token.is_some() {
                        self.stats.sets_stolen += 1;
                    }
                    if cross_cluster {
                        self.stats.remote_steals += 1;
                    }
                    if desperate {
                        self.stats.desperate_steals += 1;
                    }
                    self.stats.steals_by_level[lvl as usize] += 1;
                    // Stolen tasks keep their original target for adherence
                    // accounting; re-steal classification is Task for sets
                    // (their collocation is already broken) and None for
                    // singles.
                    let kind = if batch.token.is_some() {
                        AffinityKind::Task
                    } else {
                        AffinityKind::None
                    };
                    self.queues[pi].push_stolen(batch, kind);
                    let cost = probes * self.cfg.steal_probe_cost + self.cfg.steal_xfer_cost;
                    self.clocks[pi] += cost;
                    self.machine.monitor_mut().proc_mut(pi).overhead_cycles += cost;
                    self.failed_scans[pi] = 0;
                    if self.obs_on() {
                        self.obs_emit(ObsEvent::StealSuccess {
                            thief: p,
                            victim: v,
                            token: stolen_token,
                            ntasks: n as usize,
                            time: self.clocks[pi],
                        });
                    }
                    if let Some(fb) = self.feedback.as_mut() {
                        fb.note_scan(false);
                    }
                    // Run the first stolen task immediately. Besides matching
                    // what a real thief does, this guarantees progress: a
                    // steal always executes at least one task, so whole-set
                    // steals cannot ping-pong a set between idle servers
                    // indefinitely.
                    return self.dispatch(p);
                }
            }
            let cost = probes * self.cfg.steal_probe_cost;
            self.clocks[pi] += cost;
            self.machine.monitor_mut().proc_mut(pi).overhead_cycles += cost;
            self.failed_scans[pi] += 1;
            self.stats.failed_steals += 1;
            if let Some(fb) = self.feedback.as_mut() {
                fb.note_scan(true);
            }
            if self.obs_on() {
                self.obs_emit(ObsEvent::StealFail {
                    thief: p,
                    probes: probes as usize,
                    time: self.clocks[pi],
                });
            }
        }
        // Idle: advance past the earliest server that still has work, so it
        // acts first and we re-examine the world afterwards.
        let next = self
            .clocks
            .iter()
            .enumerate()
            .filter(|&(q, _)| !self.queues[q].is_empty())
            .map(|(_, &c)| c)
            .min();
        if let Some(t) = next {
            let target = t.max(self.clocks[pi]) + 1;
            self.machine.monitor_mut().proc_mut(pi).idle_cycles +=
                target - self.clocks[pi];
            self.clocks[pi] = target;
        }
        // If no queue anywhere has work, pending must be 0 and the phase
        // ends; `drain` checks on the next iteration.
        debug_assert!(next.is_some() || self.pending == 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cool_core::AffinitySpec;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn rt(nprocs: usize) -> SimRuntime {
        SimRuntime::new(SimConfig::new(MachineConfig::dash_small(nprocs)))
    }

    #[test]
    fn single_task_runs_and_advances_clock() {
        let mut rt = rt(2);
        let ran = Rc::new(RefCell::new(false));
        let flag = ran.clone();
        rt.run_phase(move |ctx| {
            ctx.compute(100);
            *flag.borrow_mut() = true;
        });
        assert!(*ran.borrow());
        assert!(rt.elapsed() >= 100);
        assert_eq!(rt.stats().executed, 1);
    }

    #[test]
    fn object_affinity_task_runs_on_home_server() {
        let mut rt = rt(8);
        let obj = rt.machine_mut().alloc_on_node(cool_core::NodeId(1), 64);
        let where_ran = Rc::new(RefCell::new(ProcId(99)));
        let w = where_ran.clone();
        rt.run_phase(move |ctx| {
            let w = w.clone();
            ctx.spawn(
                Task::new(move |c| {
                    *w.borrow_mut() = c.proc();
                    c.compute(10);
                })
                .with_affinity(AffinitySpec::object(obj)),
            );
        });
        // Home of node 1 is processor 4 (first of cluster 1).
        assert_eq!(*where_ran.borrow(), ProcId(4));
        assert_eq!(rt.stats().adherence(), 1.0);
    }

    #[test]
    fn task_affinity_set_runs_back_to_back_on_one_server() {
        // Stealing is disabled so the property is tested in isolation; with
        // stealing enabled a set may legitimately be stolen *as a set*.
        let mut rt = SimRuntime::new(
            SimConfig::new(MachineConfig::dash_small(4)).with_policy(StealPolicy::disabled()),
        );
        let token = ObjRef(0x500);
        let trace: Rc<RefCell<Vec<(u32, ProcId)>>> = Rc::new(RefCell::new(Vec::new()));
        let t = trace.clone();
        let trace2 = trace.clone();
        rt.run_phase(move |ctx| {
            for i in 0..6u32 {
                let t = t.clone();
                // Interleave with unrelated tasks to check set cohesion.
                ctx.spawn(Task::new(move |c| {
                    c.compute(50);
                    t.borrow_mut().push((100 + i, c.proc()));
                }));
                let t2 = trace2.clone();
                ctx.spawn(
                    Task::new(move |c| {
                        c.compute(50);
                        t2.borrow_mut().push((i, c.proc()));
                    })
                    .with_affinity(AffinitySpec::task(token)),
                );
            }
        });
        let tr = trace.borrow();
        let set: Vec<(u32, ProcId)> = tr.iter().copied().filter(|&(i, _)| i < 100).collect();
        assert_eq!(set.len(), 6);
        // All on the same server...
        assert!(set.iter().all(|&(_, p)| p == set[0].1), "{set:?}");
        // ...in FIFO order (back to back service).
        let ids: Vec<u32> = set.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn stealing_balances_unhinted_load() {
        let mut rt = rt(4);
        let seen: Rc<RefCell<std::collections::HashSet<usize>>> =
            Rc::new(RefCell::new(Default::default()));
        let s = seen.clone();
        rt.run_phase(move |ctx| {
            for _ in 0..64 {
                let s = s.clone();
                ctx.spawn(Task::new(move |c| {
                    c.compute(5000);
                    s.borrow_mut().insert(c.proc().index());
                }));
            }
        });
        assert!(rt.stats().tasks_stolen > 0);
        assert!(
            seen.borrow().len() >= 3,
            "work should spread: {:?}",
            seen.borrow()
        );
    }

    #[test]
    fn disabled_stealing_keeps_unhinted_tasks_on_creator() {
        let mut rt = SimRuntime::new(
            SimConfig::new(MachineConfig::dash_small(4)).with_policy(StealPolicy::disabled()),
        );
        let seen: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        rt.run_phase(move |ctx| {
            for _ in 0..10 {
                let s = s.clone();
                ctx.spawn(Task::new(move |c| {
                    c.compute(1000);
                    s.borrow_mut().push(c.proc().index());
                }));
            }
        });
        assert!(seen.borrow().iter().all(|&p| p == 0));
        assert_eq!(rt.stats().tasks_stolen, 0);
    }

    #[test]
    fn mutex_tasks_serialize_in_virtual_time() {
        let mut rt = rt(4);
        let obj = rt.machine_mut().alloc_on_node(cool_core::NodeId(0), 64);
        rt.run_phase(move |ctx| {
            for i in 0..4 {
                ctx.spawn(
                    Task::new(move |c| {
                        c.compute(10_000);
                    })
                    .with_affinity(AffinitySpec::processor(i))
                    .with_mutex(obj),
                );
            }
        });
        // Four 10k-cycle critical sections on one lock cannot overlap:
        // elapsed must be at least 40k cycles even with 4 processors.
        assert!(
            rt.elapsed() >= 40_000,
            "mutex sections overlapped: {}",
            rt.elapsed()
        );
        assert!(rt.stats().mutex_blocks > 0);
    }

    #[test]
    fn non_conflicting_mutex_tasks_run_in_parallel() {
        let mut rt = rt(4);
        let a = rt.machine_mut().alloc_on_node(cool_core::NodeId(0), 64);
        let b = rt.machine_mut().alloc_on_node(cool_core::NodeId(0), 64);
        rt.run_phase(move |ctx| {
            ctx.spawn(
                Task::new(|c| c.compute(10_000))
                    .with_affinity(AffinitySpec::processor(1))
                    .with_mutex(a),
            );
            ctx.spawn(
                Task::new(|c| c.compute(10_000))
                    .with_affinity(AffinitySpec::processor(2))
                    .with_mutex(b),
            );
        });
        assert!(
            rt.elapsed() < 15_000,
            "independent locks should not serialize: {}",
            rt.elapsed()
        );
    }

    #[test]
    fn nested_spawns_all_execute() {
        let mut rt = rt(4);
        let count = Rc::new(RefCell::new(0u32));
        let c0 = count.clone();
        rt.run_phase(move |ctx| {
            for _ in 0..4 {
                let c1 = c0.clone();
                ctx.spawn(Task::new(move |cx| {
                    for _ in 0..4 {
                        let c2 = c1.clone();
                        cx.spawn(Task::new(move |cy| {
                            cy.compute(10);
                            *c2.borrow_mut() += 1;
                        }));
                    }
                }));
            }
        });
        assert_eq!(*count.borrow(), 16);
        // seed + 4 + 16
        assert_eq!(rt.stats().executed, 21);
    }

    #[test]
    fn cluster_only_stealing_respects_boundary_until_desperate() {
        // 8 procs = 2 clusters. All work pinned to cluster 0 with object
        // affinity; cluster-1 thieves may only take it desperately.
        let mut rt = SimRuntime::new(
            SimConfig::new(MachineConfig::dash_small(8))
                .with_policy(StealPolicy::cluster_only()),
        );
        let obj = rt.machine_mut().alloc_on_node(cool_core::NodeId(0), 64);
        rt.run_phase(move |ctx| {
            for _ in 0..32 {
                ctx.spawn(
                    Task::new(|c| c.compute(2000)).with_affinity(AffinitySpec::object(obj)),
                );
            }
        });
        let s = rt.stats();
        // The cluster boundary is strict: no cross-cluster steals at all.
        assert_eq!(s.remote_steals, 0, "cluster boundary crossed: {s:?}");
    }

    #[test]
    fn adherence_reflects_stolen_hinted_tasks() {
        // One server hoards hinted work; with stealing, some tasks run
        // elsewhere so adherence < 1.
        let mut rt = rt(4);
        rt.run_phase(move |ctx| {
            for _ in 0..32 {
                ctx.spawn(
                    Task::new(|c| c.compute(5000)).with_affinity(AffinitySpec::processor(0)),
                );
            }
        });
        let s = rt.stats();
        assert_eq!(s.hinted, 32);
        assert!(s.adherence() < 1.0, "stealing should break some adherence");
        assert!(s.adherence() > 0.0);
    }

    #[test]
    fn trace_records_labelled_intervals() {
        let mut rt = SimRuntime::new(
            SimConfig::new(MachineConfig::dash_small(2)).with_policy(StealPolicy::disabled()),
        );
        rt.enable_trace();
        rt.run_phase(|ctx| {
            ctx.spawn(
                Task::new(|c| c.compute(100))
                    .with_label("alpha")
                    .with_affinity(AffinitySpec::processor(0)),
            );
            ctx.spawn(
                Task::new(|c| c.compute(200))
                    .with_label("beta")
                    .with_affinity(AffinitySpec::processor(1)),
            );
        });
        let trace = rt.trace();
        // Seed + two labelled tasks.
        assert_eq!(trace.len(), 3);
        let alpha = trace.iter().find(|e| e.label == "alpha").unwrap();
        let beta = trace.iter().find(|e| e.label == "beta").unwrap();
        assert_eq!(alpha.proc, ProcId(0));
        assert_eq!(beta.proc, ProcId(1));
        assert!(alpha.end >= alpha.start + 100);
        assert!(beta.end >= beta.start + 200);
        assert!(alpha.on_target && beta.on_target);
        // Intervals never overlap on one server.
        for p in 0..2 {
            let mut evs: Vec<_> = trace.iter().filter(|e| e.proc == ProcId(p)).collect();
            evs.sort_by_key(|e| e.start);
            for w in evs.windows(2) {
                assert!(w[0].end <= w[1].start, "overlap on P{p}");
            }
        }
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut rt = rt(8);
            let obj = rt.machine_mut().alloc_interleaved(4096);
            rt.run_phase(move |ctx| {
                for i in 0..40u64 {
                    ctx.spawn(
                        Task::new(move |c| {
                            c.read(obj.offset(i * 64), 64);
                            c.compute(100 + i * 7);
                            c.write(obj.offset(i * 64), 8);
                        })
                        .with_affinity(AffinitySpec::task(obj.offset((i % 5) * 64))),
                    );
                }
            });
            (rt.elapsed(), rt.stats(), rt.report().mem)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn injected_faults_are_transient_and_deterministic() {
        let run = |with_plan: bool| {
            let mut rt = rt(4);
            if with_plan {
                rt.set_fault_plan(
                    FaultPlan::new(11)
                        .slow_server(1, 500)
                        .stall_server(0, 2, 10_000)
                        .fail_random_tasks(4, 20),
                );
            }
            let count = Rc::new(RefCell::new(0u32));
            let c = count.clone();
            rt.run_phase(move |ctx| {
                for _ in 0..20 {
                    let c = c.clone();
                    ctx.spawn(Task::new(move |cx| {
                        cx.compute(1000);
                        *c.borrow_mut() += 1;
                    }));
                }
            });
            let ran = *count.borrow();
            (ran, rt.elapsed(), rt.stats())
        };
        let (clean_count, clean_elapsed, clean_stats) = run(false);
        let (a_count, a_elapsed, a_stats) = run(true);
        let (b_count, b_elapsed, b_stats) = run(true);
        // Every task still runs exactly once under injection...
        assert_eq!(clean_count, 20);
        assert_eq!(a_count, 20);
        assert_eq!(a_stats.executed, clean_stats.executed);
        assert_eq!(a_stats.injected_faults, 4);
        // ...the perturbation costs virtual time...
        assert!(a_elapsed > clean_elapsed, "{a_elapsed} vs {clean_elapsed}");
        // ...and same-seed replays are bit-identical.
        assert_eq!((a_count, a_elapsed, a_stats), (b_count, b_elapsed, b_stats));
    }

    #[test]
    fn mutex_retries_counted_separately_from_first_blocks() {
        let mut rt = rt(4);
        let obj = rt.machine_mut().alloc_on_node(cool_core::NodeId(0), 64);
        rt.run_phase(move |ctx| {
            for i in 0..4 {
                ctx.spawn(
                    Task::new(move |c| c.compute(50_000))
                        .with_affinity(AffinitySpec::processor(i))
                        .with_mutex(obj),
                );
            }
        });
        let s = rt.stats();
        // Long critical sections force repeat rotations of the same task.
        assert!(s.mutex_blocks > 0, "{s:?}");
        assert!(
            s.mutex_blocks <= 3,
            "first blocks over-counted (must be per task): {s:?}"
        );
        assert!(s.mutex_retries > 0, "{s:?}");
    }

    #[test]
    fn phases_are_barriers() {
        let mut rt = rt(4);
        let log: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        rt.run_phase(move |ctx| {
            for _ in 0..8 {
                let l = l1.clone();
                ctx.spawn(Task::new(move |c| {
                    c.compute(1000);
                    l.borrow_mut().push(1);
                }));
            }
        });
        let l2 = log.clone();
        rt.run_phase(move |ctx| {
            for _ in 0..8 {
                let l = l2.clone();
                ctx.spawn(Task::new(move |c| {
                    c.compute(1000);
                    l.borrow_mut().push(2);
                }));
            }
        });
        let v = log.borrow();
        let first_two = v.iter().position(|&x| x == 2).unwrap();
        assert!(
            v[..first_two].iter().all(|&x| x == 1),
            "phase 2 started before phase 1 finished: {v:?}"
        );
        assert_eq!(v.len(), 16);
    }
}
