//! Run reports: the numbers the paper's figures are built from.

use cool_core::{SchedStats, Topology};
use dash_sim::{ContentionStats, MissBreakdown};

/// Everything measured about one simulated run: elapsed virtual time,
/// scheduler statistics, and the memory-system breakdown.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Processors in the machine.
    pub nprocs: usize,
    /// Elapsed virtual time of the parallel section (max processor clock).
    pub elapsed: u64,
    /// Scheduler statistics.
    pub stats: SchedStats,
    /// Memory reference breakdown (the Figure 11 / Figure 15 quantities).
    pub mem: MissBreakdown,
    /// Total busy cycles across processors.
    pub busy_cycles: u64,
    /// Total idle cycles across processors.
    pub idle_cycles: u64,
    /// Total scheduling-overhead cycles across processors.
    pub overhead_cycles: u64,
    /// Coherence transitions validated (0 unless the run was configured
    /// with [`SimConfig::with_checked`](crate::SimConfig::with_checked)).
    pub coherence_transitions: u64,
    /// Coherence-invariant violations detected in checked mode (always 0
    /// for a healthy protocol; nonzero fails the cool-check gate).
    pub coherence_violations: u64,
    /// Per-resource-class contention statistics from the discrete-event
    /// engine (queue waits, busy cycles, peak occupancy). All zeros when
    /// the machine runs in zero-contention mode.
    pub contention: ContentionStats,
    /// The machine tree the run was scheduled on (pairs with
    /// [`SchedStats::steals_by_level`] for per-level steal attribution).
    pub topology: Topology,
}

impl RunReport {
    /// Speedup relative to a serial time (the paper plots speedup of the
    /// parallel section over the serial version).
    pub fn speedup(&self, serial_cycles: u64) -> f64 {
        if self.elapsed == 0 {
            0.0
        } else {
            serial_cycles as f64 / self.elapsed as f64
        }
    }

    /// Processor utilisation: busy / (busy + idle + overhead).
    pub fn utilization(&self) -> f64 {
        let total = self.busy_cycles + self.idle_cycles + self.overhead_cycles;
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }
}

/// One row of a figure: a labelled series point (e.g. `("Affinity", 8procs,
/// speedup 4.2)`). The bench harness prints vectors of these as TSV.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    pub series: &'static str,
    pub nprocs: usize,
    pub value: f64,
}

impl std::fmt::Display for SeriesPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\t{}\t{:.3}", self.series, self.nprocs, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_serial_over_parallel() {
        let r = RunReport {
            nprocs: 4,
            elapsed: 250,
            stats: SchedStats::default(),
            mem: MissBreakdown::default(),
            busy_cycles: 900,
            idle_cycles: 50,
            overhead_cycles: 50,
            coherence_transitions: 0,
            coherence_violations: 0,
            contention: ContentionStats::default(),
            topology: Topology::clustered(4, 4),
        };
        assert!((r.speedup(1000) - 4.0).abs() < 1e-12);
        assert!((r.utilization() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn degenerate_report_is_safe() {
        let r = RunReport {
            nprocs: 1,
            elapsed: 0,
            stats: SchedStats::default(),
            mem: MissBreakdown::default(),
            busy_cycles: 0,
            idle_cycles: 0,
            overhead_cycles: 0,
            coherence_transitions: 0,
            coherence_violations: 0,
            contention: ContentionStats::default(),
            topology: Topology::flat(1),
        };
        assert_eq!(r.speedup(100), 0.0);
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn series_point_prints_tsv() {
        let p = SeriesPoint {
            series: "Base",
            nprocs: 8,
            value: 4.125,
        };
        assert_eq!(p.to_string(), "Base\t8\t4.125");
    }
}
