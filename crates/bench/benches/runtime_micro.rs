//! Microbenchmarks of the runtime mechanisms themselves:
//!
//! * the per-server task-queue structure's O(1) enqueue/dequeue (Section 5
//!   claims "two modulo operations" placement and constant-time service);
//! * whole-set stealing;
//! * the threaded runtime's spawn/execute throughput, with and without
//!   affinity hints — the overhead a COOL program pays for hint evaluation;
//! * real back-to-back cache reuse: executing a task-affinity set that
//!   shares one buffer back to back vs interleaved with unrelated buffers
//!   (the temporal-reuse argument of Section 4.1 on the host machine).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use cool_core::{AffinityKind, AffinitySpec, ObjRef, ServerQueues};
use cool_rt::{RtConfig, RtTask, Runtime, StealPolicy};

fn queue_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_ops");
    g.bench_function("push_pop_affinity_64slots", |b| {
        let mut q: ServerQueues<u64> = ServerQueues::new(64);
        b.iter(|| {
            for i in 0..64u64 {
                q.push_affinity(ObjRef(i % 8), AffinityKind::Task, i);
            }
            while let Some(t) = q.pop_local() {
                std::hint::black_box(t);
            }
        });
    });
    g.bench_function("push_pop_default", |b| {
        let mut q: ServerQueues<u64> = ServerQueues::new(64);
        b.iter(|| {
            for i in 0..64u64 {
                q.push_default(AffinityKind::None, i);
            }
            while let Some(t) = q.pop_local() {
                std::hint::black_box(t);
            }
        });
    });
    g.bench_function("steal_whole_sets", |b| {
        b.iter(|| {
            let mut q: ServerQueues<u64> = ServerQueues::new(64);
            for i in 0..64u64 {
                q.push_affinity(ObjRef(i % 8), AffinityKind::Task, i);
            }
            while let Some(batch) = q.steal(true) {
                std::hint::black_box(batch.tasks.len());
            }
        });
    });
    g.finish();
}

fn spawn_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt_spawn");
    g.sample_size(10);
    for (label, hinted) in [("unhinted", false), ("object_affinity", true)] {
        g.bench_function(label, |b| {
            let rt = Runtime::new(RtConfig::new(4));
            let objs: Vec<ObjRef> = (0..16).map(|i| rt.placement().alloc_on(cool_rt::ProcId(i % 4))).collect();
            b.iter(|| {
                rt.scope(|s| {
                    for i in 0..512usize {
                        let aff = if hinted {
                            AffinitySpec::simple(objs[i % 16])
                        } else {
                            AffinitySpec::none()
                        };
                        s.spawn(
                            RtTask::new(move |_| {
                                std::hint::black_box(i * i);
                            })
                            .with_affinity(aff),
                        );
                    }
                })
                .unwrap();
            });
        });
    }
    g.finish();
}

/// The temporal cache-reuse experiment: N tasks each summing one of K
/// large buffers. With TASK affinity all tasks on the same buffer run back
/// to back on one server (cache-warm); without hints they interleave across
/// buffers and servers.
fn back_to_back_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("back_to_back_cache_reuse");
    g.sample_size(10);
    const K: usize = 8; // buffers
    const TASKS_PER: usize = 16;
    const BUF: usize = 1 << 18; // 256 KiB of u64 = 2 MiB per buffer

    let buffers: Arc<Vec<Vec<u64>>> =
        Arc::new((0..K).map(|k| vec![k as u64 + 1; BUF]).collect());

    for (label, hinted) in [("interleaved_unhinted", false), ("task_affinity_sets", true)] {
        let buffers = buffers.clone();
        g.bench_function(label, |b| {
            // One worker: isolates the back-to-back effect from parallelism.
            let rt = Runtime::new(RtConfig::new(1).with_policy(StealPolicy::disabled()));
            b.iter(|| {
                rt.scope(|s| {
                    // Interleave spawn order so only the affinity queues can
                    // restore per-buffer bursts.
                    for t in 0..TASKS_PER {
                        for k in 0..K {
                            let buffers = buffers.clone();
                            let aff = if hinted {
                                AffinitySpec::task(ObjRef(k as u64))
                            } else {
                                AffinitySpec::none()
                            };
                            s.spawn(
                                RtTask::new(move |_| {
                                    let sum: u64 =
                                        buffers[k].iter().copied().sum::<u64>() + t as u64;
                                    std::hint::black_box(sum);
                                })
                                .with_affinity(aff),
                            );
                        }
                    }
                })
                .unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, queue_ops, spawn_throughput, back_to_back_reuse);
criterion_main!(benches);
