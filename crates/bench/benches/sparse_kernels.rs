//! Criterion microbenchmarks of the sparse Cholesky substrate: the kernels
//! whose cost model (`FLOP_CYCLES` per touched non-zero) the Panel Cholesky
//! case study charges, plus the symbolic pipeline and the orderings.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use sparse::ordering::{minimum_degree, reverse_cuthill_mckee};
use sparse::{EliminationTree, Factor, PanelPartition, SymbolicFactor};
use workloads::matrices::grid_laplacian;

fn symbolic_pipeline(c: &mut Criterion) {
    let a = grid_laplacian(24);
    let mut g = c.benchmark_group("symbolic");
    g.bench_function("etree_24x24grid", |b| {
        b.iter(|| std::hint::black_box(EliminationTree::new(&a)));
    });
    let e = EliminationTree::new(&a);
    g.bench_function("symbolic_factor_24x24grid", |b| {
        b.iter(|| std::hint::black_box(SymbolicFactor::new(&a, &e)));
    });
    let sym = SymbolicFactor::new(&a, &e);
    g.bench_function("panel_partition", |b| {
        b.iter(|| std::hint::black_box(PanelPartition::fundamental(&sym, 8)));
    });
    g.finish();
}

fn numeric_factorization(c: &mut Criterion) {
    let a = grid_laplacian(24);
    let e = EliminationTree::new(&a);
    let sym = Arc::new(SymbolicFactor::new(&a, &e));
    let mut g = c.benchmark_group("numeric");
    g.sample_size(20);
    g.bench_function("left_looking_24x24grid", |b| {
        b.iter(|| {
            let mut f = Factor::init(&a, sym.clone());
            f.factorize_left_looking();
            std::hint::black_box(f.get(0, 0));
        });
    });
    let panels = PanelPartition::fundamental(&sym, 8);
    g.bench_function("panelwise_right_looking", |b| {
        b.iter(|| {
            let mut f = Factor::init(&a, sym.clone());
            for p in 0..panels.len() {
                f.panel_internal_factor(panels.range(p));
                for q in p + 1..panels.len() {
                    f.panel_update(panels.range(q), panels.range(p));
                }
            }
            std::hint::black_box(f.get(0, 0));
        });
    });
    g.finish();
}

fn orderings(c: &mut Criterion) {
    let a = grid_laplacian(16);
    let mut g = c.benchmark_group("orderings");
    g.sample_size(10);
    g.bench_function("rcm_16x16grid", |b| {
        b.iter(|| std::hint::black_box(reverse_cuthill_mckee(&a)));
    });
    g.bench_function("minimum_degree_16x16grid", |b| {
        b.iter(|| std::hint::black_box(minimum_degree(&a)));
    });
    g.finish();
}

criterion_group!(benches, symbolic_pipeline, numeric_factorization, orderings);
criterion_main!(benches);
