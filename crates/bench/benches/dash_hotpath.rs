//! Microbenchmarks of the dash-sim per-reference pipeline — the loop the
//! hot-path overhaul targets. Three access shapes isolate its layers:
//!
//! * `lookaside_repeat_hits` — back-to-back references to one hot line, the
//!   dominant case in the apps' streaming patterns; served entirely by the
//!   per-processor lookaside without touching cache sets or directory.
//! * `strided_cold_misses` — a scan that defeats both cache levels; every
//!   reference walks probe → fill → directory → monitor.
//! * `mixed_stream` — the deterministic hit/miss/coherence mix that
//!   `perfbench` reports as `machine_micro`, at reduced length.
//!
//! Wall-clock numbers for the recorded trajectory come from
//! `scripts/bench.sh` (which runs `perfbench`); these benches exist for
//! quick relative comparisons while working on the pipeline.

use criterion::{criterion_group, criterion_main, Criterion};

use cool_core::ProcId;
use dash_sim::{Machine, MachineConfig};

fn lookaside_repeat_hits(c: &mut Criterion) {
    let mut g = c.benchmark_group("dash_hotpath");
    g.sample_size(20);
    g.bench_function("lookaside_repeat_hits_32k", |b| {
        let mut m = Machine::new(MachineConfig::dash_small(4));
        let obj = m.alloc_on_node(cool_core::NodeId(0), 4096);
        // Warm the line so every timed reference is a lookaside hit.
        m.read_at(ProcId(0), obj, 8, 0);
        b.iter(|| {
            let mut cycles = 0u64;
            for _ in 0..32_768 {
                cycles += m.read_at(ProcId(0), obj, 8, cycles);
            }
            std::hint::black_box(cycles);
        });
    });
    g.finish();
}

fn strided_cold_misses(c: &mut Criterion) {
    let mut g = c.benchmark_group("dash_hotpath");
    g.sample_size(20);
    g.bench_function("strided_cold_misses_16k", |b| {
        let mut m = Machine::new(MachineConfig::dash_small(4));
        let obj = m.alloc_interleaved(1 << 20);
        b.iter(|| {
            let mut cycles = 0u64;
            for i in 0..16_384u64 {
                // Stride past the line size and wrap inside the object so
                // every reference misses L1 (and usually L2).
                let off = (i * 272) % ((1 << 20) - 64);
                cycles += m.read_at(ProcId((i % 4) as usize), obj.offset(off), 8, cycles);
            }
            std::hint::black_box(cycles);
        });
    });
    g.finish();
}

fn mixed_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("dash_hotpath");
    g.sample_size(10);
    g.bench_function("mixed_stream_100k", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::dash_small(32));
            let obj = m.alloc_interleaved(1 << 20);
            let mut cycles = 0u64;
            let mut x = 0x9e3779b97f4a7c15u64;
            for i in 0..100_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let p = ProcId((x % 32) as usize);
                let off = match i % 8 {
                    0..=4 => (p.index() as u64) * 32 * 1024 + (x % 4) * 8,
                    5 | 6 => (i * 272) % ((1 << 20) - 64),
                    _ => 512 + (x % 2) * 8,
                };
                let at = obj.offset(off);
                cycles += if i % 5 == 4 {
                    m.write_at(p, at, 8, cycles)
                } else {
                    m.read_at(p, at, 8, cycles)
                };
            }
            std::hint::black_box(cycles);
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    lookaside_repeat_hits,
    strided_cold_misses,
    mixed_stream
);
criterion_main!(benches);
