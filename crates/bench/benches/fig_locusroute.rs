//! Criterion bench regenerating Figures 10-11 (LocusRoute) at test scale.
//!
//! The wall-clock numbers time the *simulation* of each scheduling version;
//! the reproduced quantities themselves (speedups, misses) come from the
//! `figures` binary. Timing the drivers keeps the whole pipeline honest
//! under criterion's statistics and catches performance regressions in the
//! simulator and the app kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use bench::{fig_locusroute, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig_locusroute");
    g.sample_size(10);
    for procs in [1usize, 4, 8] {
        g.bench_function(format!("sim_{procs}procs"), |b| {
            b.iter(|| std::hint::black_box(fig_locusroute(&[procs], Scale::Small)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
