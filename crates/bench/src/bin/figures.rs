//! Regenerate the paper's tables and figures as TSV on stdout.
//!
//! ```text
//! cargo run --release -p bench --bin figures -- --all
//! cargo run --release -p bench --bin figures -- --ocean --panel
//! cargo run --release -p bench --bin figures -- --summary --procs 16
//! cargo run --release -p bench --bin figures -- --all --small   # quick pass
//! cargo run --release -p bench --bin figures -- --trace-out gauss_obs
//! ```
//!
//! `--trace-out BASE` runs one app (default `gauss`; pick another of the six
//! with `--trace-app NAME`) at the pinned fast scale with scheduler tracing
//! enabled and writes `BASE.trace.json` — load it in Perfetto or
//! `chrome://tracing` — plus `BASE.metrics.json`, the byte-stable
//! `cool-metrics-v1` summary the CI gate diffs.

use bench::ablation;
use bench::{
    fig_barnes_hut, fig_block_cholesky, fig_gauss, fig_locusroute, fig_ocean,
    fig_panel_cholesky, machine_table, print_rows, summary, table1, Scale,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let all = has("--all") || args.is_empty();
    let scale = if has("--small") {
        Scale::Small
    } else {
        Scale::Full
    };
    let procs: Vec<usize> = match args.iter().position(|a| a == "--procs") {
        Some(i) => args[i + 1]
            .split(',')
            .map(|s| s.parse().expect("--procs takes a comma list"))
            .collect(),
        None => scale.default_procs(),
    };
    let opt_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{flag} takes a value")).clone())
    };

    if let Some(base) = opt_value("--trace-out") {
        let app = opt_value("--trace-app").unwrap_or_else(|| "gauss".to_string());
        let version = apps::Version::AffinityDistr;
        let cfg = apps::common::sim_config_small(8, version).with_trace();
        let report = apps::driver::run_app(&app, cfg, version, None);
        let (trace, metrics) = apps::driver::trace_artifacts(&report);
        for (suffix, doc) in [("trace", &trace), ("metrics", &metrics)] {
            let path = format!("{base}.{suffix}.json");
            std::fs::write(&path, doc)
                .unwrap_or_else(|e| panic!("figures: cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }

    if all || has("--table1") {
        println!("# Table 1: affinity hints and runtime actions");
        for [hint, action] in table1() {
            println!("{hint}\t{action}");
        }
        println!();
    }
    if all || has("--machine") {
        println!("# Figure 1: modelled DASH memory hierarchy");
        for (k, v) in machine_table(scale) {
            println!("{k}\t{v}");
        }
        println!();
    }
    if all || has("--gauss") {
        println!("# Figure 3 example: column Gaussian elimination (TASK+OBJECT affinity)");
        print_rows(&fig_gauss(&procs, scale));
        println!();
    }
    if all || has("--ocean") {
        println!("# Figures 5-7: Ocean");
        print_rows(&fig_ocean(&procs, scale));
        println!();
    }
    if all || has("--locusroute") {
        println!("# Figures 10-11: LocusRoute");
        print_rows(&fig_locusroute(&procs, scale));
        println!();
    }
    if all || has("--panel") {
        println!("# Figures 14-15: Panel Cholesky");
        print_rows(&fig_panel_cholesky(&procs, scale));
        println!();
    }
    if all || has("--block") {
        println!("# Figure 16 (right): Block Cholesky");
        print_rows(&fig_block_cholesky(&procs, scale));
        println!();
    }
    if all || has("--barnes") {
        println!("# Figure 16 (left): Barnes-Hut");
        print_rows(&fig_barnes_hut(&procs, scale));
        println!();
    }
    if all || has("--ablations") {
        let p = 16;
        println!("# Ablations (see EXPERIMENTS.md): isolating one mechanism each, {p} procs");
        let mut rows = ablation::contention(p);
        rows.extend(ablation::placement(p));
        rows.extend(ablation::affinity_slots(8));
        rows.extend(ablation::prefetch(p));
        rows.extend(ablation::ordering(p));
        rows.extend(ablation::steal_sets(p));
        rows.extend(ablation::decomposition(p));
        rows.extend(ablation::granularity(p));
        ablation::print_ablation(&rows);
        println!();
    }
    if all || has("--summary") {
        let p = *procs.last().unwrap_or(&16);
        println!("# Headline (Sections 1/8): improvement of hinted over Base at {p} procs");
        println!("app\timprovement%");
        for (app, gain) in summary(p, scale) {
            println!("{app}\t{:.1}", gain * 100.0);
        }
    }
}
