//! Measure the pinned reduced-scale sweep and emit one point of the perf
//! trajectory as schema'd JSON (`BENCH_*.json`).
//!
//! ```text
//! cargo run --release -p bench --bin perfbench                    # 3 repeats, JSON on stdout
//! cargo run --release -p bench --bin perfbench -- --out BENCH_8.json
//! cargo run --release -p bench --bin perfbench -- --smoke         # 1 repeat (CI)
//! cargo run --release -p bench --bin perfbench -- --smoke --baseline BENCH_8.json
//! ```
//!
//! With `--baseline`, the emitted point is checked against the committed
//! baseline: the baseline must carry the `cool-bench-v1` schema, the
//! deterministic quantities (total refs and simulated cycles) must match
//! exactly, total wall-clock must not regress more than 25%, and the
//! `machine_micro` zero-contention fast path must hold its refs/sec to
//! within 5% of the baseline.

use bench::perf;

const SCHEMA: &str = "cool-bench-v1";
/// Allowed wall-clock regression versus the committed baseline.
const MAX_REGRESSION: f64 = 1.25;
/// Budget for the zero-contention fast path: the `machine_micro` pipeline
/// throughput (refs/sec) may fall at most 5% below the committed baseline.
/// The micro stream never touches the discrete-event engine, so this pins
/// the cost of carrying the engine alongside the legacy model.
const MICRO_MAX_REGRESSION: f64 = 1.05;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let opt = |f: &str| {
        args.iter()
            .position(|a| a == f)
            .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{f} takes a value")).clone())
    };
    // `iters` is pinned: refs totals must be comparable across runs so the
    // baseline check can demand exact equality. `--smoke` only drops repeats.
    let (repeats, iters): (u32, u32) = if has("--smoke") { (1, 16) } else { (3, 16) };
    let timings = perf::time_sweep(repeats, iters);
    // The micro stream is a ~10 ms interval and the fast-path budget is
    // tight, so sample it (with its same-process calibration) several
    // times and record the median-by-ratio sample — a typical, achievable
    // value for later runs to be held against.
    let (micro, calib) = median_fast_path_sample(if has("--smoke") { 3 } else { 5 });
    let figures_ms = perf::figures_small_wall_ms();
    let adaptive_ms = perf::adaptive_small_wall_ms();
    let json = render_json(&timings, &micro, calib, repeats, iters, figures_ms, adaptive_ms);

    match opt("--out") {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if let Some(path) = opt("--baseline") {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        check_against_baseline(&json, &baseline, &path);
        check_fast_path_budget(&json, &baseline, &path);
        eprintln!("baseline check OK ({path})");
    }
}

/// One fast-path sample: the best-of-10 micro timing and the best-of-10
/// pure-CPU calibration from the same stretch of wall-clock. Their ratio
/// is the machine-speed-normalised fast-path throughput the budget gates.
fn fast_path_sample() -> (perf::AppTiming, f64) {
    let micro = perf::machine_micro(10);
    let calib = perf::calibration_ops_per_sec(10);
    (micro, calib)
}

/// Take `n` fast-path samples and return the one with the median
/// calibrated ratio.
fn median_fast_path_sample(n: usize) -> (perf::AppTiming, f64) {
    assert!(n >= 1);
    let mut samples: Vec<(perf::AppTiming, f64)> = (0..n).map(|_| fast_path_sample()).collect();
    samples.sort_by(|a, b| {
        let ra = a.0.refs_per_sec() / a.1;
        let rb = b.0.refs_per_sec() / b.1;
        ra.partial_cmp(&rb).expect("ratios are finite")
    });
    samples.swap_remove(samples.len() / 2)
}

fn render_json(
    timings: &[perf::AppTiming],
    micro: &perf::AppTiming,
    calib: f64,
    repeats: u32,
    iters: u32,
    figures_ms: f64,
    adaptive_ms: f64,
) -> String {
    let total_refs: u64 = timings.iter().map(|t| t.refs).sum();
    let total_cycles: u64 = timings.iter().map(|t| t.sim_cycles).sum();
    let total_ms: f64 = timings.iter().map(|t| t.wall_ms).sum();
    let total_rps = if total_ms > 0.0 {
        total_refs as f64 / (total_ms / 1000.0)
    } else {
        0.0
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str("  \"scale\": \"small\",\n");
    s.push_str(&format!(
        "  \"procs\": [{}],\n",
        perf::SWEEP_PROCS.map(|p| p.to_string()).join(", ")
    ));
    s.push_str(&format!(
        "  \"versions\": [{}],\n",
        perf::SWEEP_VERSIONS
            .map(|v| format!("\"{}\"", v.label()))
            .join(", ")
    ));
    s.push_str(&format!("  \"repeats\": {repeats},\n"));
    s.push_str(&format!("  \"iters\": {iters},\n"));
    s.push_str(&format!("  \"figures_small_wall_ms\": {figures_ms:.3},\n"));
    s.push_str(&format!("  \"adaptive_small_wall_ms\": {adaptive_ms:.3},\n"));
    s.push_str("  \"apps\": [\n");
    for (i, t) in timings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"app\": \"{}\", \"refs\": {}, \"sim_cycles\": {}, \
             \"wall_ms\": {:.3}, \"refs_per_sec\": {:.0}}}{}\n",
            t.app,
            t.refs,
            t.sim_cycles,
            t.wall_ms,
            t.refs_per_sec(),
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"machine_micro\": {{\"refs\": {}, \"sim_cycles\": {}, \
         \"wall_ms\": {:.3}, \"refs_per_sec\": {:.0}}},\n",
        micro.refs,
        micro.sim_cycles,
        micro.wall_ms,
        micro.refs_per_sec()
    ));
    s.push_str(&format!(
        "  \"calibration_ops_per_sec\": {calib:.0},\n"
    ));
    s.push_str(&format!(
        "  \"total\": {{\"refs\": {total_refs}, \"sim_cycles\": {total_cycles}, \
         \"wall_ms\": {total_ms:.3}, \"refs_per_sec\": {total_rps:.0}}}\n"
    ));
    s.push_str("}\n");
    s
}

/// Pull the first `"key": <number>` after position `from`. The emitted JSON
/// is flat and key order is fixed, so a scanning extractor is sufficient —
/// no JSON dependency needed offline.
fn extract_number(json: &str, key: &str, from: usize) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json[from..].find(&needle)? + from + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validate a BENCH json document's schema: required keys present and the
/// `total` block parseable. Returns the total block's (refs, sim_cycles,
/// wall_ms).
fn validate(json: &str, what: &str) -> (f64, f64, f64) {
    for key in [
        "\"schema\"",
        "\"scale\"",
        "\"procs\"",
        "\"versions\"",
        "\"repeats\"",
        "\"apps\"",
        "\"total\"",
        "\"refs_per_sec\"",
    ] {
        assert!(json.contains(key), "{what}: missing required key {key}");
    }
    assert!(
        json.contains(&format!("\"schema\": \"{SCHEMA}\"")),
        "{what}: schema is not {SCHEMA}"
    );
    let total_at = json.find("\"total\"").expect("total key just checked");
    let refs = extract_number(json, "refs", total_at)
        .unwrap_or_else(|| panic!("{what}: total.refs unparseable"));
    let cycles = extract_number(json, "sim_cycles", total_at)
        .unwrap_or_else(|| panic!("{what}: total.sim_cycles unparseable"));
    let wall = extract_number(json, "wall_ms", total_at)
        .unwrap_or_else(|| panic!("{what}: total.wall_ms unparseable"));
    assert!(wall > 0.0, "{what}: total.wall_ms must be positive");
    (refs, cycles, wall)
}

fn check_against_baseline(current: &str, baseline: &str, path: &str) {
    let (cur_refs, cur_cycles, cur_wall) = validate(current, "current run");
    let (base_refs, base_cycles, base_wall) = validate(baseline, path);
    assert!(
        cur_refs == base_refs && cur_cycles == base_cycles,
        "simulated behaviour drifted from {path}: refs {cur_refs} vs {base_refs}, \
         cycles {cur_cycles} vs {base_cycles}; if intentional, regenerate the baseline \
         with scripts/bench.sh"
    );
    assert!(
        cur_wall <= base_wall * MAX_REGRESSION,
        "wall-clock regression: {cur_wall:.1} ms vs baseline {base_wall:.1} ms \
         (> {MAX_REGRESSION}x); investigate or regenerate with scripts/bench.sh"
    );
}

/// Extract the calibrated fast-path ratio (micro refs/sec over the same
/// process's pure-CPU calibration) from a BENCH document.
fn calibrated_ratio(json: &str, what: &str) -> f64 {
    let at = json
        .find("\"machine_micro\"")
        .unwrap_or_else(|| panic!("{what}: missing machine_micro block"));
    let rps = extract_number(json, "refs_per_sec", at)
        .unwrap_or_else(|| panic!("{what}: machine_micro.refs_per_sec unparseable"));
    let calib = extract_number(json, "calibration_ops_per_sec", 0)
        .unwrap_or_else(|| panic!("{what}: calibration_ops_per_sec unparseable"));
    assert!(calib > 0.0, "{what}: calibration must be positive");
    rps / calib
}

/// The ≤5% fast-path budget. Comparing *calibrated* throughput cancels
/// run-level machine speed (frequency scaling, noisy neighbours); the
/// remaining sampling noise is handled by re-measuring up to five times
/// and taking the best observed ratio — a genuine per-reference cost
/// increase fails every attempt, a scheduling hiccup does not.
fn check_fast_path_budget(current: &str, baseline: &str, path: &str) {
    let base = calibrated_ratio(baseline, path);
    let mut best = calibrated_ratio(current, "current run");
    let mut attempts = 0;
    while best * MICRO_MAX_REGRESSION < base && attempts < 5 {
        attempts += 1;
        eprintln!(
            "fast-path ratio {best:.4} below budget vs {base:.4}; re-measuring \
             (attempt {attempts}/5)"
        );
        let (micro, calib) = fast_path_sample();
        best = best.max(micro.refs_per_sec() / calib);
    }
    assert!(
        best * MICRO_MAX_REGRESSION >= base,
        "zero-contention fast path regressed: calibrated machine_micro throughput \
         {best:.4} vs baseline {base:.4} (budget {:.0}%) after {attempts} \
         re-measurements; the legacy path must stay within 5% of the committed \
         baseline",
        (MICRO_MAX_REGRESSION - 1.0) * 100.0
    );
}
