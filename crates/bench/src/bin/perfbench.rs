//! Measure the pinned reduced-scale sweep and emit one point of the perf
//! trajectory as schema'd JSON (`BENCH_*.json`).
//!
//! ```text
//! cargo run --release -p bench --bin perfbench                    # 3 repeats, JSON on stdout
//! cargo run --release -p bench --bin perfbench -- --out BENCH_3.json
//! cargo run --release -p bench --bin perfbench -- --smoke         # 1 repeat (CI)
//! cargo run --release -p bench --bin perfbench -- --smoke --baseline BENCH_3.json
//! ```
//!
//! With `--baseline`, the emitted point is checked against the committed
//! baseline: the baseline must carry the `cool-bench-v1` schema, the
//! deterministic quantities (total refs and simulated cycles) must match
//! exactly, and total wall-clock must not regress more than 25%.

use bench::perf;

const SCHEMA: &str = "cool-bench-v1";
/// Allowed wall-clock regression versus the committed baseline.
const MAX_REGRESSION: f64 = 1.25;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let opt = |f: &str| {
        args.iter()
            .position(|a| a == f)
            .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{f} takes a value")).clone())
    };
    // `iters` is pinned: refs totals must be comparable across runs so the
    // baseline check can demand exact equality. `--smoke` only drops repeats.
    let (repeats, iters): (u32, u32) = if has("--smoke") { (1, 16) } else { (3, 16) };
    let timings = perf::time_sweep(repeats, iters);
    let micro = perf::machine_micro(repeats.max(3));
    let figures_ms = perf::figures_small_wall_ms();
    let json = render_json(&timings, &micro, repeats, iters, figures_ms);

    match opt("--out") {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if let Some(path) = opt("--baseline") {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        check_against_baseline(&json, &baseline, &path);
        eprintln!("baseline check OK ({path})");
    }
}

fn render_json(
    timings: &[perf::AppTiming],
    micro: &perf::AppTiming,
    repeats: u32,
    iters: u32,
    figures_ms: f64,
) -> String {
    let total_refs: u64 = timings.iter().map(|t| t.refs).sum();
    let total_cycles: u64 = timings.iter().map(|t| t.sim_cycles).sum();
    let total_ms: f64 = timings.iter().map(|t| t.wall_ms).sum();
    let total_rps = if total_ms > 0.0 {
        total_refs as f64 / (total_ms / 1000.0)
    } else {
        0.0
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str("  \"scale\": \"small\",\n");
    s.push_str(&format!(
        "  \"procs\": [{}],\n",
        perf::SWEEP_PROCS.map(|p| p.to_string()).join(", ")
    ));
    s.push_str(&format!(
        "  \"versions\": [{}],\n",
        perf::SWEEP_VERSIONS
            .map(|v| format!("\"{}\"", v.label()))
            .join(", ")
    ));
    s.push_str(&format!("  \"repeats\": {repeats},\n"));
    s.push_str(&format!("  \"iters\": {iters},\n"));
    s.push_str(&format!("  \"figures_small_wall_ms\": {figures_ms:.3},\n"));
    s.push_str("  \"apps\": [\n");
    for (i, t) in timings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"app\": \"{}\", \"refs\": {}, \"sim_cycles\": {}, \
             \"wall_ms\": {:.3}, \"refs_per_sec\": {:.0}}}{}\n",
            t.app,
            t.refs,
            t.sim_cycles,
            t.wall_ms,
            t.refs_per_sec(),
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"machine_micro\": {{\"refs\": {}, \"sim_cycles\": {}, \
         \"wall_ms\": {:.3}, \"refs_per_sec\": {:.0}}},\n",
        micro.refs,
        micro.sim_cycles,
        micro.wall_ms,
        micro.refs_per_sec()
    ));
    s.push_str(&format!(
        "  \"total\": {{\"refs\": {total_refs}, \"sim_cycles\": {total_cycles}, \
         \"wall_ms\": {total_ms:.3}, \"refs_per_sec\": {total_rps:.0}}}\n"
    ));
    s.push_str("}\n");
    s
}

/// Pull the first `"key": <number>` after position `from`. The emitted JSON
/// is flat and key order is fixed, so a scanning extractor is sufficient —
/// no JSON dependency needed offline.
fn extract_number(json: &str, key: &str, from: usize) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json[from..].find(&needle)? + from + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validate a BENCH json document's schema: required keys present and the
/// `total` block parseable. Returns the total block's (refs, sim_cycles,
/// wall_ms).
fn validate(json: &str, what: &str) -> (f64, f64, f64) {
    for key in [
        "\"schema\"",
        "\"scale\"",
        "\"procs\"",
        "\"versions\"",
        "\"repeats\"",
        "\"apps\"",
        "\"total\"",
        "\"refs_per_sec\"",
    ] {
        assert!(json.contains(key), "{what}: missing required key {key}");
    }
    assert!(
        json.contains(&format!("\"schema\": \"{SCHEMA}\"")),
        "{what}: schema is not {SCHEMA}"
    );
    let total_at = json.find("\"total\"").expect("total key just checked");
    let refs = extract_number(json, "refs", total_at)
        .unwrap_or_else(|| panic!("{what}: total.refs unparseable"));
    let cycles = extract_number(json, "sim_cycles", total_at)
        .unwrap_or_else(|| panic!("{what}: total.sim_cycles unparseable"));
    let wall = extract_number(json, "wall_ms", total_at)
        .unwrap_or_else(|| panic!("{what}: total.wall_ms unparseable"));
    assert!(wall > 0.0, "{what}: total.wall_ms must be positive");
    (refs, cycles, wall)
}

fn check_against_baseline(current: &str, baseline: &str, path: &str) {
    let (cur_refs, cur_cycles, cur_wall) = validate(current, "current run");
    let (base_refs, base_cycles, base_wall) = validate(baseline, path);
    assert!(
        cur_refs == base_refs && cur_cycles == base_cycles,
        "simulated behaviour drifted from {path}: refs {cur_refs} vs {base_refs}, \
         cycles {cur_cycles} vs {base_cycles}; if intentional, regenerate the baseline \
         with scripts/bench.sh"
    );
    assert!(
        cur_wall <= base_wall * MAX_REGRESSION,
        "wall-clock regression: {cur_wall:.1} ms vs baseline {base_wall:.1} ms \
         (> {MAX_REGRESSION}x); investigate or regenerate with scripts/bench.sh"
    );
}
