//! Run the COOL work server under an open-loop LocusRoute replay and write
//! the `cool-serve-v1` report.
//!
//! ```text
//! cargo run --release -p bench --bin cool-serve -- --smoke --faults --seed 42 \
//!     --out target/serve_smoke.json \
//!     --require-zero-lost --require-shed --require-retries
//! cargo run --release -p bench --bin cool-serve -- --check target/serve_smoke.json
//! cargo run --release -p bench --bin cool-serve -- --trace-out target/serve_obs
//! ```
//!
//! `--smoke` selects the pinned CI chaos profile (tight queues, arrivals
//! faster than the slowed service rate); the default profile is a roomier
//! fault-free replay. `--faults` arms the pinned chaos plan in either
//! profile. The `--require-*` flags turn report facts into exit-status
//! gates; `--check FILE` validates an existing document (schema, accounting
//! invariants, canonical byte form) without running anything.

use bench::serve::{run_load, smoke_config, validate_serve_json, LoadConfig, ServeReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let opt_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} takes a value"))
                .clone()
        })
    };

    if let Some(path) = opt_value("--check") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        match validate_serve_json(&text) {
            Ok(r) => {
                eprintln!(
                    "{path}: valid {} report ({} requests, {} completed, {} shed)",
                    bench::serve::SERVE_SCHEMA,
                    r.requests,
                    r.completed,
                    r.shed
                );
                return;
            }
            Err(e) => die(&format!("{path}: INVALID: {e}")),
        }
    }

    let seed: u64 = opt_value("--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(42);
    let faults = has("--faults");
    let mut cfg: LoadConfig = if has("--smoke") {
        smoke_config(seed, faults)
    } else {
        LoadConfig {
            queue_capacity: 32,
            workers_per_domain: 2,
            domains: 4,
            mean_interarrival_us: 100,
            ..smoke_config(seed, faults)
        }
    };
    let trace_out = opt_value("--trace-out");
    cfg.record_trace = trace_out.is_some();

    let (report, obs) = run_load(&cfg);
    let json = report.to_json();

    if let Some(base) = trace_out {
        let trace = cool_obs::chrome_trace_json(&obs.events);
        let metrics = cool_obs::MetricsSummary::from_trace(&obs).to_json();
        cool_obs::validate_metrics_json(&metrics)
            .unwrap_or_else(|e| die(&format!("generated metrics failed validation: {e}")));
        for (suffix, doc) in [("trace", &trace), ("metrics", &metrics)] {
            let path = format!("{base}.{suffix}.json");
            std::fs::write(&path, doc)
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {path}");
        }
    }

    match opt_value("--out") {
        Some(path) => {
            std::fs::write(&path, &json)
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {path}");
            // Producer-side gate: what we wrote must parse back and be in
            // canonical byte form.
            let back = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| die(&format!("cannot re-read {path}: {e}")));
            if let Err(e) = validate_serve_json(&back) {
                die(&format!("written report failed validation: {e}"));
            }
        }
        None => print!("{json}"),
    }

    check_requirements(&report, &args);
    eprintln!(
        "cool-serve: {} submitted, {} completed, {} shed, {} retries, p99 {} us, goodput {:.0} req/s",
        report.submitted, report.completed, report.shed, report.retries, report.p99_us,
        report.goodput_rps
    );
}

/// Apply the `--require-*` exit-status gates.
fn check_requirements(report: &ServeReport, args: &[String]) {
    let has = |f: &str| args.iter().any(|a| a == f);
    if let Err(e) = report.validate() {
        die(&format!("report invariants violated: {e}"));
    }
    if has("--require-zero-lost") && (report.lost != 0 || report.double_executed != 0) {
        die(&format!(
            "--require-zero-lost: {} lost, {} double-executed",
            report.lost, report.double_executed
        ));
    }
    if has("--require-shed") && report.shed == 0 {
        die("--require-shed: admission control never shed");
    }
    if has("--require-retries") && report.retries == 0 {
        die("--require-retries: no retry was ever scheduled");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("cool-serve: {msg}");
    std::process::exit(1);
}
