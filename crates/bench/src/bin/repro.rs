//! `cool-repro`: the paper-figure reproduction sweep engine.
//!
//! ```text
//! # full paper matrix (6 apps × version ladders × 1–32 procs), committed
//! # artifacts under results/full/:
//! cargo run --release -p bench --bin repro -- --full --out results/full
//!
//! # the CI smoke gate: race the parallel pool against a serial run,
//! # check against the committed golden within a 2% band:
//! cargo run --release -p bench --bin repro -- --smoke --race-serial \
//!     --out target/repro-smoke --check results/smoke/records.json
//!
//! # a slice of the matrix, host-parallel, memoized:
//! cargo run --release -p bench --bin repro -- --apps gauss,ocean --procs 1,8
//! ```
//!
//! Flags:
//!
//! * `--smoke` — the pinned CI matrix (2 apps × 2 versions × {1, 4}, small
//!   scale); `--full` — the whole matrix at full (paper) scale; `--deep` —
//!   the pinned deep-topology matrix (3 apps × 5 versions × {1, 8, 32, 64}
//!   on the 3-level 64-processor machine); `--adaptive` — the pinned
//!   static-vs-adaptive comparison (3 apps × 5 versions × {1, 8, 32, 64},
//!   same deep machine, adding the feedback-driven versions).
//! * `--apps A,B` / `--versions L1,L2` / `--procs 1,4` /
//!   `--scale small|full|deep` — build a custom slice (1-processor `Base`
//!   baselines are always kept).
//! * `--jobs N` — worker threads (default: one per host CPU).
//! * `--serial` — run through a single pool worker.
//! * `--race-serial` — run the matrix twice, serially then pooled, assert
//!   byte-identical records, and log both wall-clocks.
//! * `--no-cache` / `--cache-dir DIR` — memoization control (default
//!   `target/repro-cache`).
//! * `--out DIR` — write `records.json`, `tables.md`, `tables.tsv`.
//! * `--check FILE [--tolerance 0.02]` — drift-gate against a golden.
//! * `--trace-out BASE` — write the sweep's own Perfetto trace.

use std::process::ExitCode;

use bench::repro::{
    self, drift, matrix::parse_version, records_doc, MemoCache, SweepOptions,
};
use bench::Scale;
use apps::Version;

fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{flag} takes a value")).clone())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);

    let scale = match opt_value(&args, "--scale").as_deref() {
        Some("full") => Scale::Full,
        Some("deep") => Scale::Deep,
        Some("small") | None => Scale::Small,
        Some(other) => panic!("--scale takes small|full|deep, got {other:?}"),
    };
    let scale = if has("--full") {
        Scale::Full
    } else if has("--deep") || has("--adaptive") {
        Scale::Deep
    } else {
        scale
    };

    let points = if has("--smoke") {
        repro::smoke_matrix()
    } else if has("--adaptive") {
        repro::adaptive_matrix()
    } else if has("--deep") {
        repro::deep_matrix()
    } else if has("--full") || (!has("--apps") && !has("--versions") && !has("--procs")) {
        repro::full_matrix(scale)
    } else {
        let apps: Vec<&'static str> = match opt_value(&args, "--apps") {
            None => apps::driver::APP_NAMES.to_vec(),
            Some(list) => list
                .split(',')
                .map(|name| {
                    *apps::driver::APP_NAMES
                        .iter()
                        .find(|&&a| a == name)
                        .unwrap_or_else(|| panic!("unknown app {name:?}"))
                })
                .collect(),
        };
        let versions: Option<Vec<Version>> = opt_value(&args, "--versions").map(|list| {
            list.split(',')
                .map(|l| parse_version(l).unwrap_or_else(|| panic!("unknown version label {l:?}")))
                .collect()
        });
        let procs: Option<Vec<usize>> = opt_value(&args, "--procs").map(|list| {
            list.split(',')
                .map(|p| p.parse().expect("--procs takes a comma list of counts"))
                .collect()
        });
        repro::build_matrix(&apps, versions.as_deref(), procs.as_deref(), scale)
    };
    let scale_name = scale.app_scale().name();
    eprintln!(
        "repro: {} matrix points at {scale_name} scale",
        points.len()
    );

    let jobs: usize = if has("--serial") {
        1
    } else {
        opt_value(&args, "--jobs").map_or(0, |v| v.parse().expect("--jobs takes a number"))
    };
    let cache = if has("--no-cache") || has("--race-serial") {
        None
    } else {
        let dir = opt_value(&args, "--cache-dir").map_or_else(MemoCache::default_dir, Into::into);
        match MemoCache::open(&dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("repro: cannot open cache {}: {e}; running uncached", dir.display());
                None
            }
        }
    };

    let outcome = if has("--race-serial") {
        // Serial reference first, then the pool, both uncached — the
        // wall-clock comparison and the byte-identity check the CI gate
        // relies on.
        let (serial_records, serial_wall) = repro::run_serial(&points);
        let outcome = repro::run_sweep(
            &points,
            &SweepOptions {
                jobs,
                cache: None,
                progress: true,
            },
        );
        if outcome.records != serial_records {
            eprintln!("repro: FAIL — parallel pool records differ from the serial run");
            return ExitCode::FAILURE;
        }
        let ratio = serial_wall.as_secs_f64() / outcome.wall.as_secs_f64().max(1e-9);
        eprintln!(
            "repro: race — parallel {:.2}s vs serial {:.2}s ({ratio:.2}x) with {} workers; records byte-identical",
            outcome.wall.as_secs_f64(),
            serial_wall.as_secs_f64(),
            outcome.workers,
        );
        if outcome.workers >= 2 && outcome.wall >= serial_wall {
            eprintln!(
                "repro: FAIL — parallel sweep is not faster than serial despite {} workers",
                outcome.workers
            );
            return ExitCode::FAILURE;
        }
        if outcome.workers < 2 {
            eprintln!("repro: note — single host CPU, wall-clock comparison is informational only");
        }
        outcome
    } else {
        let outcome = repro::run_sweep(
            &points,
            &SweepOptions {
                jobs,
                cache,
                progress: true,
            },
        );
        eprintln!(
            "repro: swept {} points in {:.2}s with {} workers ({} memoized, {} simulated)",
            outcome.records.len(),
            outcome.wall.as_secs_f64(),
            outcome.workers,
            outcome.cache_hits,
            outcome.cache_misses,
        );
        outcome
    };

    if let Some(dir) = opt_value(&args, "--out") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("repro: cannot create {}: {e}", dir.display()));
        let doc = records_doc(scale_name, &outcome.records);
        let md = repro::markdown_report(&outcome.records, scale_name);
        let tsv = repro::records_tsv(&outcome.records);
        for (name, body) in [("records.json", &doc), ("tables.md", &md), ("tables.tsv", &tsv)] {
            let path = dir.join(name);
            std::fs::write(&path, body)
                .unwrap_or_else(|e| panic!("repro: cannot write {}: {e}", path.display()));
            eprintln!("repro: wrote {}", path.display());
        }
    }

    if let Some(base) = opt_value(&args, "--trace-out") {
        let path = format!("{base}.trace.json");
        std::fs::write(&path, cool_obs::chrome_trace_json(&outcome.trace.events))
            .unwrap_or_else(|e| panic!("repro: cannot write {path}: {e}"));
        eprintln!("repro: wrote {path} (sweep trace, {} events)", outcome.trace.events.len());
    }

    if let Some(golden_path) = opt_value(&args, "--check") {
        let tol: f64 = opt_value(&args, "--tolerance")
            .map_or(0.02, |v| v.parse().expect("--tolerance takes a fraction"));
        let text = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("repro: cannot read golden {golden_path}: {e}"));
        let golden = repro::parse_records_doc(&text)
            .unwrap_or_else(|e| panic!("repro: golden {golden_path} unparseable: {e}"));
        let problems = drift(&outcome.records, &golden, tol);
        if problems.is_empty() {
            eprintln!(
                "repro: drift gate OK — {} points within {:.1}% of {golden_path}",
                golden.len(),
                tol * 100.0
            );
        } else {
            eprintln!("repro: FAIL — drift against {golden_path}:");
            for p in &problems {
                eprintln!("  {p}");
            }
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
