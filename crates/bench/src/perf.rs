//! The pinned reduced-scale sweep behind the golden-run regression test and
//! the recorded perf trajectory (`BENCH_*.json`).
//!
//! Everything here is deliberately frozen: the six applications, two
//! scheduling versions, two processor counts and `Scale::Small` inputs. The
//! golden test (`tests/golden_figures.rs`) asserts the full performance-
//! monitor breakdown of this sweep byte-for-byte against a committed TSV, so
//! any change to simulated behaviour — intentional or not — shows up as a
//! diff. The `perfbench` binary times the same sweep in wall-clock terms and
//! emits one point of the perf trajectory (refs/sec, wall-clock per app).

use std::time::Instant;

use apps::{AppReport, Version};

use crate::Scale;

/// Processor counts of the pinned sweep.
pub const SWEEP_PROCS: [usize; 2] = [4, 32];

/// Scheduling versions of the pinned sweep (the two extremes of the paper's
/// ladder: no hints at all, and affinity hints plus object distribution).
pub const SWEEP_VERSIONS: [Version; 2] = [Version::Base, Version::AffinityDistr];

/// Application names of the pinned sweep, in fixed order.
pub const SWEEP_APPS: [&str; 6] = [
    "ocean",
    "locusroute",
    "panel_cholesky",
    "block_cholesky",
    "barnes_hut",
    "gauss",
];

/// One cell of the sweep: an (app, version, procs) run and its report.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Application name.
    pub app: &'static str,
    /// Scheduling version the cell ran under.
    pub version: Version,
    /// Processor count.
    pub nprocs: usize,
    /// The run's full report.
    pub report: AppReport,
}

/// Run one pinned-scale application instance (the shared scaled dispatch
/// in `apps::driver` guarantees these are the same inputs the figure
/// drivers and the repro matrix use).
pub fn run_app(app: &str, v: Version, nprocs: usize) -> AppReport {
    let scale = Scale::Small;
    apps::driver::run_app_scaled(app, scale.config(nprocs, v), scale.app_scale(), v)
}

/// Run every cell of one application's slice of the sweep.
pub fn run_app_cells(app: &'static str) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &v in &SWEEP_VERSIONS {
        for &p in &SWEEP_PROCS {
            cells.push(SweepCell {
                app,
                version: v,
                nprocs: p,
                report: run_app(app, v, p),
            });
        }
    }
    cells
}

/// Run the full pinned sweep: all six apps, both versions, both counts.
pub fn run_sweep() -> Vec<SweepCell> {
    SWEEP_APPS.iter().flat_map(|&a| run_app_cells(a)).collect()
}

/// TSV header of the golden file.
pub const GOLDEN_HEADER: &str = "app\tseries\tprocs\trefs\tl1_hits\tl2_hits\tlocal_misses\t\
remote_misses\tinvalidations\telapsed\tbusy\tidle\toverhead\twait\tmax_err";

/// One cell as a golden TSV row: the full monitor breakdown plus virtual
/// cycles, formatted with no floating-point beyond the numeric-error column.
pub fn golden_row(c: &SweepCell) -> String {
    let r = &c.report.run;
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.3e}",
        c.app,
        c.version.label(),
        c.nprocs,
        r.mem.refs,
        r.mem.l1_hits,
        r.mem.l2_hits,
        r.mem.local_misses,
        r.mem.remote_misses,
        r.mem.invalidations,
        r.elapsed,
        r.busy_cycles,
        r.idle_cycles,
        r.overhead_cycles,
        r.contention.total_wait(),
        c.report.max_error,
    )
}

/// The whole sweep as the golden TSV (header + one row per cell + newline).
pub fn golden_tsv(cells: &[SweepCell]) -> String {
    let mut out = String::from(GOLDEN_HEADER);
    out.push('\n');
    for c in cells {
        out.push_str(&golden_row(c));
        out.push('\n');
    }
    out
}

/// Wall-clock measurement of one app's slice of the sweep: total simulated
/// references, simulated cycles, and the best-of-`repeats` wall time.
#[derive(Clone, Debug)]
pub struct AppTiming {
    /// Application name (or the name of a micro workload).
    pub app: &'static str,
    /// Total simulated references issued.
    pub refs: u64,
    /// Total simulated cycles.
    pub sim_cycles: u64,
    /// Best-of-repeats wall-clock milliseconds.
    pub wall_ms: f64,
}

impl AppTiming {
    /// Simulated references per wall-clock second.
    pub fn refs_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.refs as f64 / (self.wall_ms / 1000.0)
        }
    }
}

/// Time every app's sweep slice. Each timed region runs the slice `iters`
/// times back to back (one slice alone finishes in a few milliseconds —
/// too noisy to gate CI on), and the region is repeated `repeats` times
/// keeping the fastest wall-clock (the least-noise estimator). Reference
/// and cycle counts are asserted identical across iterations — the sweep
/// is deterministic, so any drift is a bug.
pub fn time_sweep(repeats: u32, iters: u32) -> Vec<AppTiming> {
    assert!(repeats >= 1 && iters >= 1);
    let mut out = Vec::new();
    for &app in &SWEEP_APPS {
        let mut best_ms = f64::INFINITY;
        let mut counts: Option<(u64, u64)> = None;
        for _ in 0..repeats {
            let t0 = Instant::now();
            for _ in 0..iters {
                let cells = run_app_cells(app);
                let refs: u64 = cells.iter().map(|c| c.report.run.mem.refs).sum();
                let cycles: u64 = cells.iter().map(|c| c.report.run.elapsed).sum();
                match counts {
                    None => counts = Some((refs, cycles)),
                    Some(prev) => assert_eq!(
                        prev,
                        (refs, cycles),
                        "sweep of {app} is not deterministic across repeats"
                    ),
                }
            }
            let ms = t0.elapsed().as_secs_f64() * 1000.0;
            best_ms = best_ms.min(ms);
        }
        let (refs_once, sim_cycles) = counts.expect("at least one repeat");
        out.push(AppTiming {
            app,
            refs: refs_once * u64::from(iters),
            sim_cycles,
            wall_ms: best_ms,
        });
    }
    out
}

/// Raw per-reference pipeline throughput: a deterministic mixed stream of
/// reads and writes driven straight into a `dash-sim` machine, bypassing
/// the task scheduler and the apps' native computation. This isolates
/// exactly the code the hot-path work targets — cache probe, directory,
/// classification, monitor — and is the headline number of the perf
/// trajectory. The access mix mirrors the apps: mostly short repeat
/// references to a working set (cache hits), a strided scan (misses and
/// evictions), and occasional writes from a second processor
/// (invalidations).
pub fn machine_micro(repeats: u32) -> AppTiming {
    use cool_core::ProcId;
    use dash_sim::{Machine, MachineConfig};

    assert!(repeats >= 1);
    const STREAM: u64 = 400_000;
    let mut best_ms = f64::INFINITY;
    let mut counts: Option<(u64, u64)> = None;
    for _ in 0..repeats {
        let mut m = Machine::new(MachineConfig::dash_small(32));
        let obj = m.alloc_interleaved(1 << 20);
        let t0 = Instant::now();
        let mut cycles = 0u64;
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..STREAM {
            // xorshift: deterministic, cheap, fixed across runs.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let p = ProcId((x % 32) as usize);
            let off = match i % 8 {
                // Hot line: repeat hits on the processor's own region.
                0..=4 => (p.index() as u64) * 32 * 1024 + (x % 4) * 8,
                // Strided scan: capacity misses.
                5 | 6 => (i * 272) % ((1 << 20) - 64),
                // Shared line: coherence traffic.
                _ => 512 + (x % 2) * 8,
            };
            let at = obj.offset(off);
            cycles += if i % 5 == 4 {
                m.write_at(p, at, 8, cycles)
            } else {
                m.read_at(p, at, 8, cycles)
            };
        }
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        let refs = m.monitor().breakdown().refs;
        match counts {
            None => counts = Some((refs, cycles)),
            Some(prev) => assert_eq!(prev, (refs, cycles), "micro stream not deterministic"),
        }
        best_ms = best_ms.min(ms);
    }
    let (refs, sim_cycles) = counts.expect("at least one repeat");
    AppTiming {
        app: "machine_micro",
        refs,
        sim_cycles,
        wall_ms: best_ms,
    }
}

/// Machine-speed calibration: a fixed pure-CPU xorshift reduction, timed
/// best-of-`repeats`, in ops per second. The perf gate divides the
/// `machine_micro` throughput by this before comparing against the
/// baseline's ratio, so run-level machine-state noise (frequency scaling,
/// noisy neighbours) cancels and the fast-path budget can be tight.
pub fn calibration_ops_per_sec(repeats: u32) -> f64 {
    assert!(repeats >= 1);
    const OPS: u64 = 20_000_000;
    let mut best_ms = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let mut x = 0x2545f4914f6cdd1du64;
        let mut acc = 0u64;
        for _ in 0..OPS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc = acc.wrapping_add(x);
        }
        std::hint::black_box(acc);
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        best_ms = best_ms.min(ms);
    }
    OPS as f64 / (best_ms / 1000.0)
}

/// Wall-clock of one pass over every figure driver at `Scale::Small` with
/// the small default processor list — the same code path as
/// `figures --all --small`, timed in-process.
pub fn figures_small_wall_ms() -> f64 {
    let scale = Scale::Small;
    let procs = scale.default_procs();
    let t0 = Instant::now();
    let mut rows = 0usize;
    rows += crate::fig_gauss(&procs, scale).len();
    rows += crate::fig_ocean(&procs, scale).len();
    rows += crate::fig_locusroute(&procs, scale).len();
    rows += crate::fig_panel_cholesky(&procs, scale).len();
    rows += crate::fig_block_cholesky(&procs, scale).len();
    rows += crate::fig_barnes_hut(&procs, scale).len();
    let ms = t0.elapsed().as_secs_f64() * 1000.0;
    assert!(rows > 0);
    ms
}

/// Wall-clock of one pass over the feedback-driven ladder entries at
/// `Scale::Small`: the adaptive-steal and rebalancer versions of the three
/// deep-table apps at 8 processors. Tracks the cost of carrying the
/// closed-loop layer; emitted as its own JSON key so the static `total`
/// block (and the baseline gate over it) is untouched.
pub fn adaptive_small_wall_ms() -> f64 {
    let t0 = Instant::now();
    let mut refs = 0u64;
    for app in ["gauss", "ocean", "panel_cholesky"] {
        for v in [Version::AffinityDistrAdaptive, Version::AffinityDistrRebalance] {
            refs += run_app(app, v, 8).run.mem.refs;
        }
    }
    let ms = t0.elapsed().as_secs_f64() * 1000.0;
    assert!(refs > 0);
    ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_apps_versions_and_counts() {
        // One cheap cell per app suffices to prove the dispatch table is
        // complete; the full sweep runs in the golden test.
        for &app in &SWEEP_APPS {
            let rep = run_app(app, Version::Base, 4);
            assert!(rep.run.mem.refs > 0, "{app} issued no references");
            assert!(rep.max_error < 1e-6, "{app} numerically wrong");
        }
        assert_eq!(SWEEP_APPS.len(), 6);
        assert_eq!(SWEEP_VERSIONS.len(), 2);
        assert_eq!(SWEEP_PROCS.len(), 2);
    }

    #[test]
    fn golden_rows_are_stable_format() {
        let cells = run_app_cells("gauss");
        let tsv = golden_tsv(&cells);
        let mut lines = tsv.lines();
        assert_eq!(lines.next(), Some(GOLDEN_HEADER));
        let first = lines.next().expect("at least one row");
        assert!(first.starts_with("gauss\tBase\t4\t"), "{first}");
        // 15 tab-separated columns.
        assert_eq!(first.split('\t').count(), 15);
    }
}
