//! # cool-repro — the paper-figure reproduction sweep engine
//!
//! Enumerates the full experiment matrix of the paper's evaluation — six
//! applications × their scheduling-version ladders (no hints / affinity
//! hints / object distribution / +cluster stealing) × processor counts
//! 1–32 — and runs the deterministic simulations **in parallel across host
//! threads**:
//!
//! * [`matrix`] — the matrix itself: point enumeration, per-point config
//!   fingerprints, and the pinned CI smoke subset.
//! * [`pool`] — a work-stealing job pool over host threads with a
//!   progress/ETA reporter riding the `cool-obs` event stream (the sweep is
//!   itself exportable as a Perfetto trace).
//! * [`cache`] — per-point memoization keyed by config hash: re-invocations
//!   skip every unchanged point.
//! * [`record`] — the schema'd `cool-repro-v1` JSON record (speedup,
//!   execution-time breakdown, PerfMonitor cache/local/remote attribution)
//!   and its byte-stable reader/writer.
//! * [`render`] — Markdown/TSV speedup tables and miss-breakdown tables
//!   mapped one-to-one onto the paper's figures (committed under
//!   `results/`).
//! * [`check`] — the tolerance-band drift gate CI runs against the
//!   committed goldens.
//!
//! The `repro` binary (`cargo run --release -p bench --bin repro`) is the
//! command-line front end; `REPRODUCTION.md` at the repo root documents the
//! exact commands behind every committed artifact.

pub mod cache;
pub mod check;
pub mod matrix;
pub mod pool;
pub mod record;
pub mod render;

pub use cache::MemoCache;
pub use check::drift;
pub use matrix::{adaptive_matrix, build_matrix, deep_matrix, full_matrix, smoke_matrix, MatrixPoint};
pub use pool::{run_serial, run_sweep, SweepOptions, SweepOutcome};
pub use record::{
    derive_speedups, fnv1a64, parse_records_doc, records_doc, ReproRecord, REPRO_EPOCH,
    REPRO_SCHEMA,
};
pub use render::{markdown_report, records_tsv};
