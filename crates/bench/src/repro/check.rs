//! The tolerance-band drift gate: freshly swept records vs a committed
//! golden document.
//!
//! The simulator is deterministic, so on an unchanged tree the comparison
//! holds exactly; the relative tolerance band exists so an *intentional*
//! small behaviour change (a cost-constant tweak, a latency adjustment) can
//! be landed together with refreshed prose while CI still catches real
//! regressions. Identity must match exactly: the two documents must cover
//! the same matrix points, and a config-fingerprint mismatch is always
//! drift (it means the machine, the inputs or the epoch changed and the
//! goldens need regeneration, a reviewable act).

use super::record::ReproRecord;

/// Relative difference of two counts, safe at zero.
fn rel(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

fn key(r: &ReproRecord) -> (String, String, usize, String) {
    (r.app.clone(), r.series.clone(), r.nprocs, r.scale.clone())
}

/// Compare `fresh` against `golden` within relative tolerance `tol`
/// (e.g. `0.02` = 2%). Returns every violation found, empty on success.
pub fn drift(fresh: &[ReproRecord], golden: &[ReproRecord], tol: f64) -> Vec<String> {
    let mut problems = Vec::new();
    for g in golden {
        let Some(f) = fresh.iter().find(|f| key(f) == key(g)) else {
            problems.push(format!(
                "missing point: {}/{}@{}({}) in fresh sweep",
                g.app, g.series, g.nprocs, g.scale
            ));
            continue;
        };
        let id = format!("{}/{}@{}({})", g.app, g.series, g.nprocs, g.scale);
        if f.config != g.config {
            problems.push(format!(
                "{id}: config drift\n  golden: {}\n  fresh:  {}",
                g.config, f.config
            ));
            continue;
        }
        let fields: [(&str, f64, f64); 14] = [
            ("speedup", f.speedup, g.speedup),
            ("elapsed", f.elapsed as f64, g.elapsed as f64),
            ("busy", f.busy as f64, g.busy as f64),
            ("idle", f.idle as f64, g.idle as f64),
            ("overhead", f.overhead as f64, g.overhead as f64),
            ("refs", f.refs as f64, g.refs as f64),
            ("l1_hits", f.l1_hits as f64, g.l1_hits as f64),
            ("l2_hits", f.l2_hits as f64, g.l2_hits as f64),
            ("local_misses", f.local_misses as f64, g.local_misses as f64),
            ("remote_misses", f.remote_misses as f64, g.remote_misses as f64),
            ("invalidations", f.invalidations as f64, g.invalidations as f64),
            ("wait_cycles", f.wait_cycles as f64, g.wait_cycles as f64),
            ("peak_occ", f.peak_occ as f64, g.peak_occ as f64),
            ("adherence", f.adherence, g.adherence),
        ];
        for (name, fv, gv) in fields {
            let r = rel(fv, gv);
            if r > tol {
                problems.push(format!(
                    "{id}: {name} drifted {:.2}% (golden {gv}, fresh {fv}, tolerance {:.2}%)",
                    r * 100.0,
                    tol * 100.0
                ));
            }
        }
        if f.max_error > 1e-6 {
            problems.push(format!("{id}: numeric error {:.3e} exceeds 1e-6", f.max_error));
        }
    }
    for f in fresh {
        if !golden.iter().any(|g| key(g) == key(f)) {
            problems.push(format!(
                "extra point: {}/{}@{}({}) not in golden",
                f.app, f.series, f.nprocs, f.scale
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(elapsed: u64) -> ReproRecord {
        ReproRecord {
            app: "gauss".into(),
            series: "Base".into(),
            nprocs: 4,
            scale: "small".into(),
            config: "cfg".into(),
            hash: "0".into(),
            speedup: 1.0,
            elapsed,
            busy: 100,
            idle: 0,
            overhead: 0,
            refs: 100,
            l1_hits: 90,
            l2_hits: 0,
            local_misses: 5,
            remote_misses: 5,
            invalidations: 0,
            wait_cycles: 0,
            peak_occ: 0,
            adherence: 1.0,
            max_error: 0.0,
        }
    }

    #[test]
    fn identical_records_pass() {
        assert!(drift(&[rec(1000)], &[rec(1000)], 0.0).is_empty());
    }

    #[test]
    fn small_drift_within_band_passes_large_fails() {
        assert!(drift(&[rec(1010)], &[rec(1000)], 0.02).is_empty());
        let problems = drift(&[rec(1500)], &[rec(1000)], 0.02);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("elapsed"), "{problems:?}");
    }

    #[test]
    fn missing_extra_and_config_drift_reported() {
        let mut other = rec(1000);
        other.nprocs = 8;
        let problems = drift(&[other], &[rec(1000)], 0.5);
        assert!(problems.iter().any(|p| p.starts_with("missing point")));
        assert!(problems.iter().any(|p| p.starts_with("extra point")));

        let mut forged = rec(1000);
        forged.config = "other-cfg".into();
        let problems = drift(&[forged], &[rec(1000)], 0.5);
        assert!(problems.iter().any(|p| p.contains("config drift")), "{problems:?}");
    }

    #[test]
    fn numeric_error_always_gates() {
        let mut bad = rec(1000);
        bad.max_error = 1e-3;
        let problems = drift(&[bad], &[rec(1000)], 1.0);
        assert!(problems.iter().any(|p| p.contains("numeric error")), "{problems:?}");
    }
}
