//! The experiment matrix: which (app, version, processor-count, scale)
//! points the reproduction sweeps, and how one point runs.

use apps::driver;
use apps::Version;

use super::record::{fnv1a64, ReproRecord, REPRO_EPOCH};
use crate::Scale;

/// One cell of the experiment matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatrixPoint {
    /// Application name (one of [`driver::APP_NAMES`]).
    pub app: &'static str,
    /// Scheduling version.
    pub version: Version,
    /// Simulated processors.
    pub nprocs: usize,
    /// Experiment scale.
    pub scale: Scale,
}

impl MatrixPoint {
    /// Short display label, e.g. `gauss/Base@4(small)`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}@{}({})",
            self.app,
            self.version.label(),
            self.nprocs,
            self.scale.app_scale().name()
        )
    }

    /// The full config fingerprint this point memoizes under: pinned app
    /// inputs, scheduling version, the complete simulator fingerprint
    /// (machine + policy + cost constants), and the repro epoch.
    pub fn config_string(&self) -> String {
        let cfg = self.scale.config(self.nprocs, self.version);
        format!(
            "{} | v={} | {} | epoch={}",
            driver::params_fingerprint(self.app, self.scale.app_scale()),
            self.version.label(),
            cfg.fingerprint(),
            REPRO_EPOCH,
        )
    }

    /// The memoization key: `fnv1a64(config_string)` in lower-case hex.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", fnv1a64(&self.config_string()))
    }

    /// Run the simulation for this point and package the measurements.
    /// Deterministic: equal points produce byte-identical records wherever
    /// and whenever they run.
    pub fn run(&self) -> ReproRecord {
        let cfg = self.scale.config(self.nprocs, self.version);
        let report = driver::run_app_scaled(self.app, cfg, self.scale.app_scale(), self.version);
        ReproRecord::from_report(
            self.app,
            self.version,
            self.nprocs,
            self.scale.app_scale().name(),
            self.config_string(),
            &report,
        )
    }
}

/// The full reproduction matrix at `scale`: every app, its paper version
/// ladder ([`driver::versions_for`]), and the paper's processor counts
/// ([`driver::procs_for`] — 1–32, Panel Cholesky capped at 24 at full
/// scale).
pub fn full_matrix(scale: Scale) -> Vec<MatrixPoint> {
    build_matrix(&driver::APP_NAMES, None, None, scale)
}

/// Apps of the CI smoke matrix.
pub const SMOKE_APPS: [&str; 2] = ["gauss", "ocean"];
/// Versions of the CI smoke matrix (the two extremes of the ladder).
pub const SMOKE_VERSIONS: [Version; 2] = [Version::Base, Version::AffinityDistr];
/// Processor counts of the CI smoke matrix.
pub const SMOKE_PROCS: [usize; 2] = [1, 4];

/// The pinned CI smoke matrix: 2 apps × 2 versions × {1, 4} processors at
/// small scale, validated against `results/smoke/records.json` by the CI
/// drift gate.
pub fn smoke_matrix() -> Vec<MatrixPoint> {
    build_matrix(
        &SMOKE_APPS,
        Some(&SMOKE_VERSIONS),
        Some(&SMOKE_PROCS),
        Scale::Small,
    )
}

/// Apps of the deep-topology sweep: one task-queue app (gauss), one
/// region-parallel grid app (ocean) and one dependence-driven app (panel).
pub const DEEP_APPS: [&str; 3] = ["gauss", "ocean", "panel_cholesky"];
/// Versions of the deep-topology sweep: the classic ladder endpoints plus
/// the three topology-bounded stealing disciplines the sweep compares.
pub const DEEP_VERSIONS: [Version; 5] = [
    Version::Base,
    Version::AffinityDistr,
    Version::AffinityDistrCluster,
    Version::AffinityDistrSocket,
    Version::AffinityDistrWiden,
];
/// Processor counts of the deep-topology sweep (one per tree tier).
pub const DEEP_PROCS: [usize; 4] = [1, 8, 32, 64];

/// The pinned deep-topology matrix: 3 apps × 5 versions × {1, 8, 32, 64}
/// processors on the 3-level 64-processor machine, validated against
/// `results/deep/records.json` by the CI drift gate. Built with explicit
/// loops rather than [`build_matrix`] because the socket/widen versions are
/// deliberately *not* in the apps' paper ladders ([`driver::versions_for`])
/// — they exist only on deep trees, where "cluster" and "whole machine" stop
/// being the only two choices.
pub fn deep_matrix() -> Vec<MatrixPoint> {
    let mut points = Vec::new();
    for &app in &DEEP_APPS {
        for &version in &DEEP_VERSIONS {
            for &nprocs in &DEEP_PROCS {
                let point = MatrixPoint {
                    app,
                    version,
                    nprocs,
                    scale: Scale::Deep,
                };
                if !points.contains(&point) {
                    points.push(point);
                }
            }
        }
    }
    points
}

/// Apps of the adaptive-policy sweep (same trio as the deep sweep, so the
/// adaptive series land next to committed static curves).
pub const ADAPTIVE_APPS: [&str; 3] = DEEP_APPS;
/// Versions of the adaptive-policy sweep: each closed-loop version next to
/// its static parent (`Adaptive` next to `ClusterSteal`, `Rebalance` next
/// to plain `Affinity+Distr`), plus `Base` so speedups are well-defined.
pub const ADAPTIVE_VERSIONS: [Version; 5] = [
    Version::Base,
    Version::AffinityDistr,
    Version::AffinityDistrCluster,
    Version::AffinityDistrAdaptive,
    Version::AffinityDistrRebalance,
];
/// Processor counts of the adaptive-policy sweep (one per tree tier).
pub const ADAPTIVE_PROCS: [usize; 4] = DEEP_PROCS;

/// The pinned adaptive-policy matrix: 3 apps × 5 versions × {1, 8, 32, 64}
/// processors on the deep machine, validated against
/// `results/adaptive/records.json` by the CI drift gate. Runs at
/// [`Scale::Deep`] because that is where the static locality ceilings
/// visibly starve (cluster-only stealing on a 64-way tree) — the regime the
/// feedback loop exists for. Built with explicit loops for the same reason
/// as [`deep_matrix`]: the adaptive versions are not in any app's paper
/// ladder.
pub fn adaptive_matrix() -> Vec<MatrixPoint> {
    let mut points = Vec::new();
    for &app in &ADAPTIVE_APPS {
        for &version in &ADAPTIVE_VERSIONS {
            for &nprocs in &ADAPTIVE_PROCS {
                let point = MatrixPoint {
                    app,
                    version,
                    nprocs,
                    scale: Scale::Deep,
                };
                if !points.contains(&point) {
                    points.push(point);
                }
            }
        }
    }
    points
}

/// Build a matrix from filters. `versions`/`procs` of `None` mean "the
/// paper's ladder/counts for each app". Unknown version labels or counts
/// are the caller's problem (the point will panic when run); unknown app
/// names panic here. Every app's 1-processor `Base` baseline is always
/// included so speedups are well-defined on any slice.
pub fn build_matrix(
    apps: &[&'static str],
    versions: Option<&[Version]>,
    procs: Option<&[usize]>,
    scale: Scale,
) -> Vec<MatrixPoint> {
    let mut points = Vec::new();
    for &app in apps {
        let ladder = driver::versions_for(app);
        let counts = driver::procs_for(app, scale.app_scale());
        let baseline = MatrixPoint {
            app,
            version: Version::Base,
            nprocs: 1,
            scale,
        };
        if !points.contains(&baseline) {
            points.push(baseline);
        }
        for &v in ladder {
            if let Some(sel) = versions {
                if !sel.contains(&v) {
                    continue;
                }
            }
            for &p in counts {
                if let Some(sel) = procs {
                    if !sel.contains(&p) {
                        continue;
                    }
                }
                let point = MatrixPoint {
                    app,
                    version: v,
                    nprocs: p,
                    scale,
                };
                if !points.contains(&point) {
                    points.push(point);
                }
            }
        }
    }
    points
}

/// Parse a version label (as printed by `Version::label`) back to the enum.
pub fn parse_version(label: &str) -> Option<Version> {
    Version::ALL.iter().copied().find(|v| v.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_covers_every_ladder_and_count() {
        let m = full_matrix(Scale::Small);
        // 6 apps; ladder sizes 3+3+4+2+2+3 = 17 series × 6 counts = 102.
        assert_eq!(m.len(), 17 * 6);
        for &app in &driver::APP_NAMES {
            assert!(m
                .iter()
                .any(|p| p.app == app && p.version == Version::Base && p.nprocs == 1));
        }
        // Panel Cholesky at full scale stops at 24 processors.
        let f = full_matrix(Scale::Full);
        assert!(f
            .iter()
            .filter(|p| p.app == "panel_cholesky")
            .all(|p| p.nprocs <= 24));
        assert!(f.iter().any(|p| p.app == "panel_cholesky" && p.nprocs == 24));
    }

    #[test]
    fn smoke_matrix_is_pinned() {
        let m = smoke_matrix();
        assert_eq!(m.len(), 8);
        assert!(m.iter().all(|p| p.scale == Scale::Small));
        assert!(m
            .iter()
            .any(|p| p.app == "ocean" && p.version == Version::AffinityDistr && p.nprocs == 4));
    }

    #[test]
    fn deep_matrix_is_pinned() {
        let m = deep_matrix();
        assert_eq!(m.len(), 3 * 5 * 4);
        assert!(m.iter().all(|p| p.scale == Scale::Deep));
        // Every app keeps its 1-processor Base baseline for speedups.
        for &app in &DEEP_APPS {
            assert!(m
                .iter()
                .any(|p| p.app == app && p.version == Version::Base && p.nprocs == 1));
        }
        // The topology-bounded versions reach the full 64-way machine.
        assert!(m.iter().any(|p| {
            p.app == "gauss" && p.version == Version::AffinityDistrWiden && p.nprocs == 64
        }));
    }

    #[test]
    fn adaptive_matrix_is_pinned() {
        let m = adaptive_matrix();
        assert_eq!(m.len(), 3 * 5 * 4);
        assert!(m.iter().all(|p| p.scale == Scale::Deep));
        // Each adaptive version sits next to its static parent.
        for &v in &[
            Version::AffinityDistrCluster,
            Version::AffinityDistrAdaptive,
            Version::AffinityDistr,
            Version::AffinityDistrRebalance,
        ] {
            assert!(m.iter().any(|p| p.app == "gauss" && p.version == v && p.nprocs == 64));
        }
    }

    #[test]
    fn adaptive_versions_fingerprint_separately_from_parents() {
        let parent = MatrixPoint {
            app: "gauss",
            version: Version::AffinityDistrCluster,
            nprocs: 8,
            scale: Scale::Deep,
        };
        let adaptive = MatrixPoint {
            version: Version::AffinityDistrAdaptive,
            ..parent
        };
        assert_ne!(parent.config_string(), adaptive.config_string());
        assert!(adaptive.config_string().contains("adapt=w"));
        assert!(!parent.config_string().contains("adapt="));
        let rebal = MatrixPoint {
            version: Version::AffinityDistrRebalance,
            ..parent
        };
        assert!(rebal.config_string().contains("rebal=m"));
    }

    #[test]
    fn filtered_matrix_keeps_baselines() {
        let m = build_matrix(
            &["gauss"],
            Some(&[Version::AffinityDistr]),
            Some(&[8]),
            Scale::Small,
        );
        assert_eq!(m.len(), 2, "baseline + the selected point: {m:?}");
        assert!(m.contains(&MatrixPoint {
            app: "gauss",
            version: Version::Base,
            nprocs: 1,
            scale: Scale::Small,
        }));
    }

    #[test]
    fn config_strings_separate_every_axis() {
        let base = MatrixPoint {
            app: "gauss",
            version: Version::Base,
            nprocs: 4,
            scale: Scale::Small,
        };
        let others = vec![
            MatrixPoint { app: "ocean", ..base },
            MatrixPoint {
                version: Version::AffinityDistr,
                ..base
            },
            MatrixPoint { nprocs: 8, ..base },
            MatrixPoint {
                scale: Scale::Full,
                ..base
            },
        ];
        let c0 = base.config_string();
        for o in others {
            assert_ne!(o.config_string(), c0, "{o:?}");
            assert_ne!(o.hash_hex(), base.hash_hex());
        }
    }

    #[test]
    fn version_labels_roundtrip() {
        for v in Version::ALL {
            assert_eq!(parse_version(v.label()), Some(v));
        }
        assert_eq!(parse_version("nope"), None);
    }
}
