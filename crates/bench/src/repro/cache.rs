//! Per-point result memoization keyed by config hash.
//!
//! Every matrix point's measurements are a pure function of its config
//! string (inputs + version + simulator fingerprint + repro epoch), so the
//! sweep engine caches each finished [`ReproRecord`] in a file named by the
//! FNV-1a hash of that string and skips re-running unchanged points on
//! re-invocation. The full config string is stored *inside* the record and
//! re-checked on lookup, so a hash collision (or a stale file from an older
//! epoch) degrades to a cache miss, never to a wrong result.
//!
//! The cache lives under `target/` by default — it is a derived artifact,
//! never committed, and `cargo clean` (or deleting the directory) is the
//! way to force a full re-run after a behaviour change that forgot to bump
//! `REPRO_EPOCH`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use super::matrix::MatrixPoint;
use super::record::ReproRecord;

/// A directory of memoized records, shared by reference across the job
/// pool's workers (lookup/store take `&self`; hit/miss counters are
/// atomics).
#[derive(Debug)]
pub struct MemoCache {
    dir: PathBuf,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl MemoCache {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(MemoCache {
            dir,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        })
    }

    /// The default location: `target/repro-cache` next to the workspace
    /// `Cargo.toml` when run via cargo, else relative to the CWD.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/repro-cache")
    }

    fn path_for(&self, point: &MatrixPoint) -> PathBuf {
        self.dir.join(format!("{}.json", point.hash_hex()))
    }

    /// Look a point up. A readable record whose embedded config string
    /// matches the point's is a hit; anything else (absent file, parse
    /// failure, config mismatch) is a miss.
    pub fn lookup(&self, point: &MatrixPoint) -> Option<ReproRecord> {
        let found = fs::read_to_string(self.path_for(point))
            .ok()
            .and_then(|text| ReproRecord::parse(&text).ok())
            .filter(|rec| rec.config == point.config_string());
        match found {
            Some(rec) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(rec)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a freshly computed record. Written to a worker-unique temp
    /// file then renamed, so concurrent writers and readers never observe a
    /// torn record.
    pub fn store(&self, rec: &ReproRecord) -> io::Result<()> {
        let path = self.dir.join(format!("{}.json", rec.hash));
        let tmp = self.dir.join(format!("{}.tmp-{:?}", rec.hash, std::thread::current().id()));
        fs::write(&tmp, format!("{}\n", rec.to_json(0)))?;
        fs::rename(&tmp, &path)
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repro::matrix::{build_matrix, MatrixPoint};
    use crate::Scale;
    use apps::Version;

    fn tmp_cache(tag: &str) -> MemoCache {
        let dir = std::env::temp_dir().join(format!(
            "cool-repro-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        MemoCache::open(dir).unwrap()
    }

    fn point() -> MatrixPoint {
        build_matrix(&["gauss"], None, Some(&[2]), Scale::Small)
            .into_iter()
            .find(|p| p.nprocs == 2 && p.version == Version::Base)
            .unwrap()
    }

    #[test]
    fn miss_then_hit_roundtrip() {
        let cache = tmp_cache("roundtrip");
        let p = point();
        assert!(cache.lookup(&p).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let rec = p.run();
        cache.store(&rec).unwrap();
        let back = cache.lookup(&p).expect("stored record found");
        assert_eq!(back, rec);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn mutated_config_misses_and_collision_degrades_to_miss() {
        let cache = tmp_cache("mutate");
        let p = point();
        let rec = p.run();
        cache.store(&rec).unwrap();
        // A different processor count is a different hash → plain miss.
        let other = MatrixPoint { nprocs: 4, ..p };
        assert!(cache.lookup(&other).is_none());
        // Simulate a hash collision / stale epoch: a file at the right name
        // whose embedded config disagrees must be treated as a miss.
        let mut forged = rec.clone();
        forged.config = format!("{} | forged", rec.config);
        fs::write(
            cache.dir().join(format!("{}.json", p.hash_hex())),
            forged.to_json(0),
        )
        .unwrap();
        assert!(cache.lookup(&p).is_none(), "config mismatch is a miss");
        let _ = fs::remove_dir_all(cache.dir());
    }
}
