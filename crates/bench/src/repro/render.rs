//! Renderers: matrix records → the paper-figure tables.
//!
//! Two output shapes, both deterministic down to the byte so the committed
//! artifacts under `results/` are regenerable verbatim:
//!
//! * **TSV** — the same nine columns the `figures` binary has always
//!   printed (shared line formatter, so the two harnesses cannot drift);
//! * **Markdown** — per application, a speedup table (processor counts ×
//!   version series, Figures 5–16) and a cache-miss breakdown table
//!   (cache / local / remote attribution, Figures 11 & 15), mapped
//!   one-to-one onto the paper's figures.

use std::collections::BTreeSet;

use super::record::ReproRecord;
use crate::FigureRow;

/// Header of the ten-column figure TSV (`wait` is the contention
/// engine's queue-wait total; 0 in zero-contention sweeps).
pub const TSV_HEADER: &str =
    "figure\tseries\tprocs\tspeedup\telapsed\tmisses\tlocal%\tadherence\twait\tmax_err";

/// One formatted TSV line — the single definition both the `figures` binary
/// and the repro renderer print through.
#[allow(clippy::too_many_arguments)]
pub fn tsv_line(
    figure: &str,
    series: &str,
    nprocs: usize,
    speedup: f64,
    elapsed: u64,
    misses: u64,
    local_frac: f64,
    adherence: f64,
    wait_cycles: u64,
    max_error: f64,
) -> String {
    format!(
        "{}\t{}\t{}\t{:.3}\t{}\t{}\t{:.1}\t{:.1}\t{}\t{:.2e}",
        figure,
        series,
        nprocs,
        speedup,
        elapsed,
        misses,
        local_frac * 100.0,
        adherence * 100.0,
        wait_cycles,
        max_error
    )
}

/// Figure-driver rows as a TSV table (header + rows + trailing newline).
pub fn figure_rows_tsv(rows: &[FigureRow]) -> String {
    let mut out = String::from(TSV_HEADER);
    out.push('\n');
    for r in rows {
        out.push_str(&tsv_line(
            r.figure, r.series, r.nprocs, r.speedup, r.elapsed, r.misses, r.local_frac,
            r.adherence, r.wait_cycles, r.max_error,
        ));
        out.push('\n');
    }
    out
}

/// Repro records as the same TSV table; the figure column is
/// `app@scale`.
pub fn records_tsv(records: &[ReproRecord]) -> String {
    let mut out = String::from(TSV_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&tsv_line(
            &format!("{}@{}", r.app, r.scale),
            &r.series,
            r.nprocs,
            r.speedup,
            r.elapsed,
            r.misses(),
            r.local_frac(),
            r.adherence,
            r.wait_cycles,
            r.max_error,
        ));
        out.push('\n');
    }
    out
}

/// The paper exhibit an app's tables map onto.
fn exhibit(app: &str) -> &'static str {
    match app {
        "ocean" => "Figures 5–7",
        "locusroute" => "Figures 10–11",
        "panel_cholesky" => "Figures 14–15",
        "block_cholesky" => "Figure 16 (right)",
        "barnes_hut" => "Figure 16 (left)",
        "gauss" => "Figure 3 example",
        _ => "—",
    }
}

/// Distinct apps in first-appearance order.
fn apps_of(records: &[ReproRecord]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in records {
        if !out.contains(&r.app) {
            out.push(r.app.clone());
        }
    }
    out
}

/// Series of one app in first-appearance order (the ladder order the
/// matrix enumerates).
fn series_of(records: &[ReproRecord]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in records {
        if !out.contains(&r.series) {
            out.push(r.series.clone());
        }
    }
    out
}

fn find<'a>(
    records: &'a [ReproRecord],
    series: &str,
    nprocs: usize,
) -> Option<&'a ReproRecord> {
    records
        .iter()
        .find(|r| r.series == series && r.nprocs == nprocs)
}

/// One app's speedup table: rows = processor counts, columns = version
/// series; cells are speedup vs the 1-processor `Base` baseline.
pub fn speedup_table_md(app_records: &[ReproRecord]) -> String {
    let series = series_of(app_records);
    let procs: BTreeSet<usize> = app_records.iter().map(|r| r.nprocs).collect();
    let mut s = String::from("| procs |");
    for col in &series {
        s.push_str(&format!(" {col} |"));
    }
    s.push_str("\n|---:|");
    s.push_str(&"---:|".repeat(series.len()));
    s.push('\n');
    for &p in &procs {
        s.push_str(&format!("| {p} |"));
        for col in &series {
            match find(app_records, col, p) {
                Some(r) => s.push_str(&format!(" {:.3} |", r.speedup)),
                None => s.push_str(" — |"),
            }
        }
        s.push('\n');
    }
    s
}

/// One app's miss-breakdown table: per (series, procs), total references,
/// the fraction serviced by the caches, and the local/remote split of the
/// misses — the quantities behind the paper's execution-time breakdown
/// bars.
pub fn breakdown_table_md(app_records: &[ReproRecord]) -> String {
    let series = series_of(app_records);
    let procs: BTreeSet<usize> = app_records.iter().map(|r| r.nprocs).collect();
    let mut s = String::from(
        "| series | procs | refs | cache% | misses | local% | remote% |\n\
         |---|---:|---:|---:|---:|---:|---:|\n",
    );
    for col in &series {
        for &p in &procs {
            if let Some(r) = find(app_records, col, p) {
                s.push_str(&format!(
                    "| {} | {} | {} | {:.1} | {} | {:.1} | {:.1} |\n",
                    col,
                    p,
                    r.refs,
                    r.cache_frac() * 100.0,
                    r.misses(),
                    r.local_frac() * 100.0,
                    (1.0 - r.local_frac()) * 100.0,
                ));
            }
        }
    }
    s
}

/// The whole record set as one Markdown report: a section per app with its
/// paper-exhibit mapping, speedup table and miss breakdown.
pub fn markdown_report(records: &[ReproRecord], scale: &str) -> String {
    let mut s = format!(
        "# cool-repro sweep tables ({scale} scale)\n\n\
         Generated by `cargo run --release -p bench --bin repro` — do not edit.\n\
         Records: `records.json` (`cool-repro-v1`); speedups are vs the\n\
         1-processor `Base` run of each app.\n"
    );
    for app in apps_of(records) {
        let app_records: Vec<ReproRecord> = records
            .iter()
            .filter(|r| r.app == app)
            .cloned()
            .collect();
        s.push_str(&format!("\n## {app} — {}\n\n", exhibit(&app)));
        s.push_str("### Speedup\n\n");
        s.push_str(&speedup_table_md(&app_records));
        s.push_str("\n### Memory-reference breakdown\n\n");
        s.push_str(&breakdown_table_md(&app_records));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(app: &str, series: &str, nprocs: usize, speedup: f64) -> ReproRecord {
        ReproRecord {
            app: app.into(),
            series: series.into(),
            nprocs,
            scale: "small".into(),
            config: "c".into(),
            hash: "0".into(),
            speedup,
            elapsed: 100,
            busy: 80,
            idle: 10,
            overhead: 10,
            refs: 1000,
            l1_hits: 800,
            l2_hits: 100,
            local_misses: 60,
            remote_misses: 40,
            invalidations: 0,
            wait_cycles: 0,
            peak_occ: 0,
            adherence: 1.0,
            max_error: 0.0,
        }
    }

    #[test]
    fn speedup_table_has_series_columns_and_proc_rows() {
        let recs = vec![
            rec("gauss", "Base", 1, 1.0),
            rec("gauss", "Base", 4, 2.5),
            rec("gauss", "Affinity+Distr", 4, 3.75),
        ];
        let md = speedup_table_md(&recs);
        assert!(md.starts_with("| procs | Base | Affinity+Distr |"), "{md}");
        assert!(md.contains("| 4 | 2.500 | 3.750 |"), "{md}");
        assert!(md.contains("| 1 | 1.000 | — |"), "missing cell dashed: {md}");
    }

    #[test]
    fn breakdown_percentages_sum() {
        let md = breakdown_table_md(&[rec("gauss", "Base", 4, 1.0)]);
        assert!(md.contains("| Base | 4 | 1000 | 90.0 | 100 | 60.0 | 40.0 |"), "{md}");
    }

    #[test]
    fn markdown_report_sections_per_app() {
        let recs = vec![rec("gauss", "Base", 1, 1.0), rec("ocean", "Base", 1, 1.0)];
        let md = markdown_report(&recs, "small");
        assert!(md.contains("## gauss — Figure 3 example"));
        assert!(md.contains("## ocean — Figures 5–7"));
    }

    #[test]
    fn tsv_matches_legacy_format() {
        let line = tsv_line(
            "fig3_gauss",
            "Base",
            4,
            1.684,
            27725918,
            1883748,
            1.0,
            0.989,
            512,
            0.0,
        );
        assert_eq!(
            line,
            "fig3_gauss\tBase\t4\t1.684\t27725918\t1883748\t100.0\t98.9\t512\t0.00e0"
        );
    }
}
