//! The `cool-repro-v1` record: one matrix point's measurements, as a
//! byte-stable JSON object.
//!
//! Like `cool-metrics-v1` and `cool-bench-v1`, the writer is hand-rolled
//! string formatting over a fixed key order (the offline build has no JSON
//! dependency), and the reader is a small line-oriented parser that accepts
//! exactly the documents the writer produces. Round-tripping a record
//! through [`ReproRecord::to_json`] / [`ReproRecord::parse`] is the
//! identity on bytes — the memoization cache and the CI drift gate both
//! rely on that.

use apps::{AppReport, Version};

/// Schema tag stamped into every record and document.
pub const REPRO_SCHEMA: &str = "cool-repro-v1";

/// Bumped whenever simulated behaviour changes *intentionally* (a scheduler
/// fix, a latency-table change, an app change). It is folded into every
/// config string and therefore every memoization hash, invalidating cached
/// records that predate the change. Config mutations (machine, policy,
/// inputs, processor count) are captured by the fingerprints themselves.
///
/// Epoch 2: machine-scale sweeps run through the discrete-event contention
/// engine (bus/net/directory/memory resources with queueing), and records
/// carry `wait_cycles` / `peak_occ`.
pub const REPRO_EPOCH: u32 = 2;

/// Canonicalize a float to the precision the JSON writer emits, so a
/// record holds exactly what its serialization holds and
/// serialize→parse is the identity on the struct (the cache and the
/// determinism tests compare records, not just documents).
fn canon6(x: f64) -> f64 {
    format!("{x:.6}").parse().expect("formatted float reparses")
}

fn canon3e(x: f64) -> f64 {
    format!("{x:.3e}").parse().expect("formatted float reparses")
}

/// FNV-1a 64-bit over a string — the memoization key hash. Stable across
/// platforms and runs by construction.
pub fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Everything measured at one matrix point, plus the identity and config
/// fingerprint that memoize it.
#[derive(Clone, Debug, PartialEq)]
pub struct ReproRecord {
    /// Application name (one of `apps::driver::APP_NAMES`).
    pub app: String,
    /// Scheduling-version label (the figure series), e.g. `Affinity+Distr`.
    pub series: String,
    /// Simulated processors.
    pub nprocs: usize,
    /// Experiment scale (`small` / `full`).
    pub scale: String,
    /// Full human-readable config fingerprint (inputs, machine, policy,
    /// scheduler constants, repro epoch). The memoization key preimage.
    pub config: String,
    /// `fnv1a64(config)` in lower-case hex — the cache file name.
    pub hash: String,
    /// Speedup vs the 1-processor `Base` run of the same app and scale.
    /// Derived from the record *set* after a sweep (see
    /// `derive_speedups`); `0.0` until then.
    pub speedup: f64,
    /// Elapsed virtual cycles of the parallel section.
    pub elapsed: u64,
    /// Execution-time breakdown: busy cycles across processors.
    pub busy: u64,
    /// Idle cycles across processors.
    pub idle: u64,
    /// Scheduling-overhead cycles across processors.
    pub overhead: u64,
    /// Shared-data references issued (PerfMonitor).
    pub refs: u64,
    /// References serviced in the first-level cache.
    pub l1_hits: u64,
    /// References serviced in the second-level cache.
    pub l2_hits: u64,
    /// Misses serviced from local memory.
    pub local_misses: u64,
    /// Misses serviced from remote memory (or a remote dirty cache).
    pub remote_misses: u64,
    /// Coherence invalidations sent.
    pub invalidations: u64,
    /// Queue-wait cycles summed over every contention resource (0 in
    /// zero-contention mode).
    pub wait_cycles: u64,
    /// Peak instantaneous occupancy over all contention resources.
    pub peak_occ: u64,
    /// Affinity adherence: fraction of hinted tasks on their hinted server.
    pub adherence: f64,
    /// Max numeric deviation from the app's sequential reference.
    pub max_error: f64,
}

impl ReproRecord {
    /// Total cache misses (the Figure 11 / Figure 15 quantity).
    pub fn misses(&self) -> u64 {
        self.local_misses + self.remote_misses
    }

    /// Fraction of misses serviced locally (0 when there were none).
    pub fn local_frac(&self) -> f64 {
        let m = self.misses();
        if m == 0 {
            0.0
        } else {
            self.local_misses as f64 / m as f64
        }
    }

    /// Fraction of references serviced by either cache level.
    pub fn cache_frac(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            (self.l1_hits + self.l2_hits) as f64 / self.refs as f64
        }
    }

    /// Build a record from a finished run. `speedup` stays 0 until the
    /// sweep-level post-pass fills it in from the 1-processor baseline.
    pub fn from_report(
        app: &str,
        version: Version,
        nprocs: usize,
        scale: &str,
        config: String,
        report: &AppReport,
    ) -> Self {
        let r = &report.run;
        ReproRecord {
            app: app.to_string(),
            series: version.label().to_string(),
            nprocs,
            scale: scale.to_string(),
            hash: format!("{:016x}", fnv1a64(&config)),
            config,
            speedup: 0.0,
            elapsed: r.elapsed,
            busy: r.busy_cycles,
            idle: r.idle_cycles,
            overhead: r.overhead_cycles,
            refs: r.mem.refs,
            l1_hits: r.mem.l1_hits,
            l2_hits: r.mem.l2_hits,
            local_misses: r.mem.local_misses,
            remote_misses: r.mem.remote_misses,
            invalidations: r.mem.invalidations,
            wait_cycles: r.contention.total_wait(),
            peak_occ: r.contention.peak_occupancy(),
            adherence: canon6(r.stats.adherence()),
            max_error: canon3e(report.max_error),
        }
    }

    /// The record as a `cool-repro-v1` JSON object, indented by `indent`
    /// spaces. Key order and number formatting are fixed, so equal records
    /// produce equal bytes.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut s = String::new();
        s.push_str(&format!("{pad}{{\n"));
        s.push_str(&format!("{inner}\"schema\": \"{REPRO_SCHEMA}\",\n"));
        s.push_str(&format!("{inner}\"app\": \"{}\",\n", self.app));
        s.push_str(&format!("{inner}\"series\": \"{}\",\n", self.series));
        s.push_str(&format!("{inner}\"nprocs\": {},\n", self.nprocs));
        s.push_str(&format!("{inner}\"scale\": \"{}\",\n", self.scale));
        s.push_str(&format!("{inner}\"config\": \"{}\",\n", self.config));
        s.push_str(&format!("{inner}\"hash\": \"{}\",\n", self.hash));
        s.push_str(&format!("{inner}\"speedup\": {:.6},\n", self.speedup));
        s.push_str(&format!("{inner}\"elapsed\": {},\n", self.elapsed));
        s.push_str(&format!("{inner}\"busy\": {},\n", self.busy));
        s.push_str(&format!("{inner}\"idle\": {},\n", self.idle));
        s.push_str(&format!("{inner}\"overhead\": {},\n", self.overhead));
        s.push_str(&format!("{inner}\"refs\": {},\n", self.refs));
        s.push_str(&format!("{inner}\"l1_hits\": {},\n", self.l1_hits));
        s.push_str(&format!("{inner}\"l2_hits\": {},\n", self.l2_hits));
        s.push_str(&format!("{inner}\"local_misses\": {},\n", self.local_misses));
        s.push_str(&format!("{inner}\"remote_misses\": {},\n", self.remote_misses));
        s.push_str(&format!("{inner}\"invalidations\": {},\n", self.invalidations));
        s.push_str(&format!("{inner}\"wait_cycles\": {},\n", self.wait_cycles));
        s.push_str(&format!("{inner}\"peak_occ\": {},\n", self.peak_occ));
        s.push_str(&format!("{inner}\"adherence\": {:.6},\n", self.adherence));
        s.push_str(&format!("{inner}\"max_error\": {:.3e}\n", self.max_error));
        s.push_str(&format!("{pad}}}"));
        s
    }

    /// Parse one record object (the exact shape [`ReproRecord::to_json`]
    /// writes). Returns a description of the first problem found.
    pub fn parse(text: &str) -> Result<Self, String> {
        let fields = parse_flat_object(text)?;
        let get = |k: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("missing field {k:?}"))
        };
        let get_str = |k: &str| -> Result<String, String> {
            let v = get(k)?;
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("field {k:?} is not a string: {v}"))?;
            Ok(v.to_string())
        };
        let get_u64 = |k: &str| -> Result<u64, String> {
            get(k)?
                .parse::<u64>()
                .map_err(|e| format!("field {k:?}: {e}"))
        };
        let get_f64 = |k: &str| -> Result<f64, String> {
            get(k)?
                .parse::<f64>()
                .map_err(|e| format!("field {k:?}: {e}"))
        };
        let schema = get_str("schema")?;
        if schema != REPRO_SCHEMA {
            return Err(format!("schema {schema:?}, expected {REPRO_SCHEMA:?}"));
        }
        Ok(ReproRecord {
            app: get_str("app")?,
            series: get_str("series")?,
            nprocs: get_u64("nprocs")? as usize,
            scale: get_str("scale")?,
            config: get_str("config")?,
            hash: get_str("hash")?,
            speedup: get_f64("speedup")?,
            elapsed: get_u64("elapsed")?,
            busy: get_u64("busy")?,
            idle: get_u64("idle")?,
            overhead: get_u64("overhead")?,
            refs: get_u64("refs")?,
            l1_hits: get_u64("l1_hits")?,
            l2_hits: get_u64("l2_hits")?,
            local_misses: get_u64("local_misses")?,
            remote_misses: get_u64("remote_misses")?,
            invalidations: get_u64("invalidations")?,
            wait_cycles: get_u64("wait_cycles")?,
            peak_occ: get_u64("peak_occ")?,
            adherence: get_f64("adherence")?,
            max_error: get_f64("max_error")?,
        })
    }
}

/// Split a flat (no nested objects/arrays) JSON object into raw
/// `(key, value)` pairs, one per line as the writers emit them.
fn parse_flat_object(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" || line == "}" {
            continue;
        }
        let Some((k, v)) = line.split_once(':') else {
            return Err(format!("unparseable line {line:?}"));
        };
        let k = k
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("bad key in line {line:?}"))?;
        out.push((k.to_string(), v.trim().to_string()));
    }
    Ok(out)
}

/// Serialise a whole sweep as a `cool-repro-v1` matrix document: a header
/// (schema, scale, point count) plus every record in matrix order.
pub fn records_doc(scale: &str, records: &[ReproRecord]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{REPRO_SCHEMA}\",\n"));
    s.push_str("  \"kind\": \"matrix\",\n");
    s.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    s.push_str(&format!("  \"points\": {},\n", records.len()));
    s.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&r.to_json(4));
        s.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parse a matrix document back into records (the exact shape
/// [`records_doc`] writes). Validates the schema tag and the point count.
pub fn parse_records_doc(text: &str) -> Result<Vec<ReproRecord>, String> {
    if !text.contains(&format!("\"schema\": \"{REPRO_SCHEMA}\"")) {
        return Err(format!("document carries no {REPRO_SCHEMA:?} schema tag"));
    }
    let mut records = Vec::new();
    let mut current: Option<String> = None;
    let mut declared_points: Option<usize> = None;
    for line in text.lines() {
        let t = line.trim();
        if current.is_none() {
            if let Some(v) = t.strip_prefix("\"points\":") {
                let v = v.trim().trim_end_matches(',');
                declared_points = Some(v.parse().map_err(|e| format!("points: {e}"))?);
            }
        }
        if t == "{" && line.starts_with("    ") {
            current = Some(String::from("{\n"));
            continue;
        }
        if let Some(buf) = current.as_mut() {
            if t == "}" || t == "}," {
                buf.push('}');
                records.push(ReproRecord::parse(buf)?);
                current = None;
            } else {
                buf.push_str(t);
                buf.push('\n');
            }
        }
    }
    if let Some(n) = declared_points {
        if n != records.len() {
            return Err(format!("document declares {n} points, found {}", records.len()));
        }
    }
    Ok(records)
}

/// Fill in each record's speedup from the 1-processor `Base` run of the
/// same `(app, scale)` — the paper's baseline convention. Records whose
/// baseline is absent from the set keep speedup 0 (the renderer flags
/// them); every matrix built by [`super::matrix`] includes its baselines.
pub fn derive_speedups(records: &mut [ReproRecord]) {
    let baselines: Vec<(String, String, u64)> = records
        .iter()
        .filter(|r| r.series == "Base" && r.nprocs == 1)
        .map(|r| (r.app.clone(), r.scale.clone(), r.elapsed))
        .collect();
    for r in records.iter_mut() {
        let base = baselines
            .iter()
            .find(|(a, s, _)| *a == r.app && *s == r.scale)
            .map(|(_, _, e)| *e);
        r.speedup = match base {
            Some(serial) if r.elapsed > 0 => canon6(serial as f64 / r.elapsed as f64),
            _ => 0.0,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReproRecord {
        ReproRecord {
            app: "gauss".into(),
            series: "Base".into(),
            nprocs: 4,
            scale: "small".into(),
            config: "gauss@small n32 seed7 | p4x4 | epoch=1".into(),
            hash: format!("{:016x}", fnv1a64("gauss@small n32 seed7 | p4x4 | epoch=1")),
            speedup: 1.25,
            elapsed: 1000,
            busy: 700,
            idle: 200,
            overhead: 100,
            refs: 5000,
            l1_hits: 4000,
            l2_hits: 500,
            local_misses: 300,
            remote_misses: 200,
            invalidations: 10,
            wait_cycles: 640,
            peak_occ: 3,
            adherence: 0.875,
            max_error: 1.25e-13,
        }
    }

    #[test]
    fn record_roundtrips_byte_identically() {
        let r = sample();
        let json = r.to_json(0);
        let back = ReproRecord::parse(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(0), json, "reserialisation is the identity");
    }

    #[test]
    fn doc_roundtrips() {
        let a = sample();
        let mut b = sample();
        b.series = "Affinity+Distr".into();
        b.nprocs = 8;
        b.elapsed = 250;
        let doc = records_doc("small", &[a.clone(), b.clone()]);
        let back = parse_records_doc(&doc).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], a);
        assert_eq!(back[1], b);
        assert_eq!(records_doc("small", &back), doc);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_truncation() {
        let r = sample();
        let json = r.to_json(0).replace(REPRO_SCHEMA, "cool-repro-v0");
        assert!(ReproRecord::parse(&json).is_err());
        let doc = records_doc("small", &[sample()]).replace("\"points\": 1", "\"points\": 2");
        assert!(parse_records_doc(&doc).is_err());
    }

    #[test]
    fn derived_quantities() {
        let r = sample();
        assert_eq!(r.misses(), 500);
        assert!((r.local_frac() - 0.6).abs() < 1e-12);
        assert!((r.cache_frac() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn speedup_derivation_uses_base_at_one_proc() {
        let mut base = sample();
        base.series = "Base".into();
        base.nprocs = 1;
        base.elapsed = 2000;
        let mut fast = sample();
        fast.nprocs = 8;
        fast.elapsed = 500;
        let mut other_app = sample();
        other_app.app = "ocean".into();
        other_app.elapsed = 100;
        let mut recs = vec![base, fast, other_app];
        derive_speedups(&mut recs);
        assert!((recs[0].speedup - 1.0).abs() < 1e-12);
        assert!((recs[1].speedup - 4.0).abs() < 1e-12);
        assert_eq!(recs[2].speedup, 0.0, "no baseline for ocean in the set");
    }

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a vectors.
        assert_eq!(fnv1a64(""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64("a"), 0xaf63dc4c8601ec8c);
    }
}
