//! A host-thread work-stealing job pool for the sweep.
//!
//! Matrix points are independent, deterministic, CPU-bound jobs of wildly
//! different lengths (a 1-processor small Gauss run vs a 32-processor full
//! Ocean run differ by orders of magnitude), so the pool uses the same
//! discipline the paper's runtime does: each worker owns a deque seeded
//! round-robin, pops locally from the front, and steals from the *back* of
//! the next non-empty victim when it runs dry. No job creates more jobs, so
//! termination is simply "a full victim scan found nothing".
//!
//! Every point is mirrored onto the `cool-obs` observability stream as a
//! `TaskBegin`/`TaskEnd` pair stamped with host milliseconds and carrying
//! the point's PerfMonitor breakdown as its [`MemDelta`] — which makes the
//! sweep itself exportable as a Perfetto trace and drives the
//! [`ProgressMeter`] ETA lines. Determinism is unaffected by scheduling:
//! results land in a slot array indexed by matrix position, so the output
//! record order is the matrix order regardless of which worker finished
//! what when.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cool_core::obs::{MemDelta, ObsEvent, ObsRecorder, ObsTrace};
use cool_core::{ProcId, TaskUid};
use cool_obs::ProgressMeter;

use super::cache::MemoCache;
use super::matrix::MatrixPoint;
use super::record::{derive_speedups, ReproRecord};

/// Pool configuration.
#[derive(Debug, Default)]
pub struct SweepOptions {
    /// Worker threads; 0 means one per available host CPU.
    pub jobs: usize,
    /// Memoization cache (`None` disables lookup *and* store).
    pub cache: Option<MemoCache>,
    /// Print progress/ETA lines to stderr as points complete.
    pub progress: bool,
}

/// What a sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One record per matrix point, in matrix order, speedups derived.
    pub records: Vec<ReproRecord>,
    /// Wall-clock of the whole sweep.
    pub wall: Duration,
    /// Worker threads actually used.
    pub workers: usize,
    /// Memoization hits (0 when the cache was disabled).
    pub cache_hits: usize,
    /// Points actually simulated.
    pub cache_misses: usize,
    /// The sweep's own observability stream (one task per point).
    pub trace: ObsTrace,
}

/// Number of workers for `jobs` requested (0 = auto) and `npoints` jobs.
pub fn effective_workers(jobs: usize, npoints: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = if jobs == 0 { auto } else { jobs };
    n.clamp(1, npoints.max(1))
}

/// Run every point through the pool.
pub fn run_sweep(points: &[MatrixPoint], opts: &SweepOptions) -> SweepOutcome {
    let nworkers = effective_workers(opts.jobs, points.len());
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..nworkers)
        .map(|_| Mutex::new(VecDeque::new()))
        .collect();
    for (i, _) in points.iter().enumerate() {
        queues[i % nworkers].lock().unwrap().push_back(i);
    }
    let results: Mutex<Vec<Option<ReproRecord>>> = Mutex::new(vec![None; points.len()]);
    let recorder = ObsRecorder::with_default_capacity(nworkers);
    let meter = Mutex::new(ProgressMeter::new(points.len(), 0, 2_000));
    let epoch = Instant::now();

    std::thread::scope(|scope| {
        for w in 0..nworkers {
            let queues = &queues;
            let results = &results;
            let recorder = &recorder;
            let meter = &meter;
            let cache = opts.cache.as_ref();
            let progress = opts.progress;
            scope.spawn(move || {
                worker_loop(
                    w, points, queues, results, recorder, meter, cache, progress, epoch,
                );
            });
        }
    });

    let wall = epoch.elapsed();
    let mut records: Vec<ReproRecord> = results
        .into_inner()
        .unwrap()
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("point {} never ran", points[i].label())))
        .collect();
    derive_speedups(&mut records);
    let (cache_hits, cache_misses) = match &opts.cache {
        Some(c) => (c.hits(), c.misses()),
        None => (0, points.len()),
    };
    SweepOutcome {
        records,
        wall,
        workers: nworkers,
        cache_hits,
        cache_misses,
        trace: recorder.drain(),
    }
}

/// Run the same points as a plain serial loop with no pool, no cache and no
/// instrumentation — the reference the determinism tests and the CI
/// `--race-serial` wall-clock comparison measure the pool against.
pub fn run_serial(points: &[MatrixPoint]) -> (Vec<ReproRecord>, Duration) {
    let t0 = Instant::now();
    let mut records: Vec<ReproRecord> = points.iter().map(MatrixPoint::run).collect();
    derive_speedups(&mut records);
    (records, t0.elapsed())
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    points: &[MatrixPoint],
    queues: &[Mutex<VecDeque<usize>>],
    results: &Mutex<Vec<Option<ReproRecord>>>,
    recorder: &ObsRecorder,
    meter: &Mutex<ProgressMeter>,
    cache: Option<&MemoCache>,
    progress: bool,
    epoch: Instant,
) {
    let now_ms = |epoch: Instant| epoch.elapsed().as_millis() as u64;
    loop {
        // Local pop from the front; steal from the back of the next
        // non-empty victim. All jobs are seeded up front, so an empty full
        // scan means everything is claimed and this worker can retire.
        let mut job = queues[w].lock().unwrap().pop_front();
        if job.is_none() {
            for k in 1..queues.len() {
                let victim = (w + k) % queues.len();
                job = queues[victim].lock().unwrap().pop_back();
                if job.is_some() {
                    break;
                }
            }
        }
        let Some(idx) = job else { break };
        let point = &points[idx];
        recorder.record(
            w,
            ObsEvent::TaskBegin {
                task: TaskUid(idx as u64 + 1),
                label: Some(point.app),
                proc: ProcId(w),
                set: None,
                hinted: false,
                on_target: true,
                time: now_ms(epoch),
            },
        );
        let rec = match cache.and_then(|c| c.lookup(point)) {
            Some(hit) => hit,
            None => {
                let rec = point.run();
                if let Some(c) = cache {
                    if let Err(e) = c.store(&rec) {
                        eprintln!("repro: cache store failed for {}: {e}", point.label());
                    }
                }
                rec
            }
        };
        let end = ObsEvent::TaskEnd {
            task: TaskUid(idx as u64 + 1),
            proc: ProcId(w),
            mem: Some(MemDelta {
                refs: rec.refs,
                l1_hits: rec.l1_hits,
                l2_hits: rec.l2_hits,
                local_misses: rec.local_misses,
                remote_misses: rec.remote_misses,
            }),
            time: now_ms(epoch),
        };
        recorder.record(w, end.clone());
        if progress {
            if let Some(line) = meter.lock().unwrap().on_event(&end) {
                eprintln!("repro: {line}");
            }
        }
        results.lock().unwrap()[idx] = Some(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repro::matrix::build_matrix;
    use crate::Scale;

    fn tiny_matrix() -> Vec<MatrixPoint> {
        build_matrix(&["gauss"], None, Some(&[1, 2]), Scale::Small)
    }

    #[test]
    fn pool_matches_serial_in_matrix_order() {
        let points = tiny_matrix();
        let (serial, _) = run_serial(&points);
        let out = run_sweep(
            &points,
            &SweepOptions {
                jobs: 3,
                cache: None,
                progress: false,
            },
        );
        assert_eq!(out.records, serial);
        assert_eq!(out.cache_misses, points.len());
        assert_eq!(out.cache_hits, 0);
    }

    #[test]
    fn sweep_trace_has_one_task_per_point_with_attribution() {
        let points = tiny_matrix();
        let out = run_sweep(
            &points,
            &SweepOptions {
                jobs: 2,
                cache: None,
                progress: false,
            },
        );
        let begins = out
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, ObsEvent::TaskBegin { .. }))
            .count();
        let mut mem = MemDelta::default();
        for e in &out.trace.events {
            if let ObsEvent::TaskEnd { mem: Some(d), .. } = e {
                mem.accumulate(d);
            }
        }
        assert_eq!(begins, points.len());
        assert_eq!(
            mem.refs,
            out.records.iter().map(|r| r.refs).sum::<u64>(),
            "trace attribution sums to the record totals"
        );
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(effective_workers(5, 2), 2, "never more workers than jobs");
        assert_eq!(effective_workers(3, 100), 3);
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(0, 0), 1);
    }
}
