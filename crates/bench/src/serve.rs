//! The `cool-serve` load harness: an open-loop generator replaying
//! LocusRoute route-requests against the `cool-rt` work server, and the
//! byte-stable `cool-serve-v1` report it produces.
//!
//! The generator is **open-loop**: arrival times come from a deterministic
//! seeded schedule, not from completions, so an overloaded server sees the
//! same offered load no matter how slowly it drains — which is what makes
//! shed rate and saturation throughput meaningful. Each request routes one
//! net of the pinned LocusRoute circuit (see [`apps::serve_adapter`]),
//! sharded by geographic region exactly as the paper's affinity hints
//! shard the batch program.
//!
//! After the drain, the harness cross-checks the server's books against the
//! application's: every admitted request must be terminal (zero *lost*), no
//! body may have succeeded twice (zero *double-executed*), and the cost
//! array's total occupancy must equal the committed cells of exactly the
//! completed requests (the conservation invariant).
//!
//! Like `cool-metrics-v1` / `cool-repro-v1`, the report writer is
//! hand-rolled with a fixed key order and canonical number formatting, and
//! `parse(to_json(r)) == r` / `to_json(parse(s)) == s` are identities — the
//! CI smoke gate relies on that.

use std::time::{Duration, Instant};

use apps::driver::AppScale;
use apps::serve_adapter::RouteRequestSet;
use cool_core::obs::ObsTrace;
use cool_core::FaultPlan;
use cool_rt::serve::{Outcome, Request, ServeConfig, SubmitError, WorkServer};

/// Schema tag stamped into every report.
pub const SERVE_SCHEMA: &str = "cool-serve-v1";

/// One load-run configuration: the server shape plus the arrival process.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Circuit scale (pinned LocusRoute inputs from `apps::driver`).
    pub scale: AppScale,
    /// Seed for the arrival schedule (and the chaos plan, if enabled).
    pub seed: u64,
    /// Shard domains.
    pub domains: usize,
    /// Workers per domain pool.
    pub workers_per_domain: usize,
    /// Per-domain waiting-queue capacity.
    pub queue_capacity: usize,
    /// Per-domain queued-cost budget.
    pub budget_units: u64,
    /// Attempts per request.
    pub max_attempts: u32,
    /// Mean inter-arrival gap of the open-loop schedule, in microseconds.
    pub mean_interarrival_us: u64,
    /// Fault plan to run the server under (`None` = fault-free).
    pub faults: Option<FaultPlan>,
    /// Record an observability trace alongside the report.
    pub record_trace: bool,
}

/// The pinned smoke profile the CI gate runs: small circuit, two domains of
/// one worker each, a deliberately tight queue, and arrivals far faster than
/// the (chaos-slowed) service rate — so the run *must* shed, retry, and
/// still lose nothing.
pub fn smoke_config(seed: u64, faults: bool) -> LoadConfig {
    LoadConfig {
        scale: AppScale::Small,
        seed,
        domains: 2,
        workers_per_domain: 1,
        queue_capacity: 4,
        budget_units: u64::MAX,
        max_attempts: 3,
        mean_interarrival_us: 30,
        faults: faults.then(|| chaos_plan(seed)),
        record_trace: false,
    }
}

/// The pinned chaos plan for the smoke profile. Everything is keyed by
/// request id or domain (never arrival order), so the injected event set is
/// identical under any interleaving:
///
/// * requests 0–2 fail their first attempt (they arrive into empty queues,
///   so they are always admitted — guaranteeing nonzero retries even when
///   later victims get shed);
/// * six more victims drawn from the seed;
/// * domain 0's pool is slowed by 400 µs per job (the overload that forces
///   shedding against the 4-deep queue);
/// * request 3's admission stalls the intake path for 2 ms.
pub fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .fail_request(0)
        .fail_request(1)
        .fail_request(2)
        .fail_random_requests(6, 96)
        .slow_domain(0, 400)
        .stall_intake(3, 2_000)
}

/// Everything one load run measured, as written to / read from a
/// `cool-serve-v1` document. Latency percentiles are integer microseconds;
/// rates are canonicalized to 6 decimal places.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Application replayed (currently always `locusroute`).
    pub app: String,
    /// Circuit scale name.
    pub scale: String,
    /// Seed of the arrival schedule / chaos plan.
    pub seed: u64,
    /// Route-requests in the replay.
    pub requests: u64,
    /// Shard domains.
    pub domains: u64,
    /// Workers per domain.
    pub workers_per_domain: u64,
    /// Per-domain queue capacity.
    pub queue_capacity: u64,
    /// Attempts per request.
    pub max_attempts: u64,
    /// Mean inter-arrival gap (µs).
    pub mean_interarrival_us: u64,
    /// Whether a chaos plan was active.
    pub chaos: bool,
    /// Submissions that reached admission.
    pub submitted: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that exhausted their attempts.
    pub failed: u64,
    /// Requests cut off by their deadline.
    pub timed_out: u64,
    /// Admitted requests with no terminal outcome after drain (must be 0).
    pub lost: u64,
    /// Requests whose body succeeded more than once (must be 0).
    pub double_executed: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Injected transient request failures consumed.
    pub injected_failures: u64,
    /// Injected intake stalls consumed.
    pub intake_stalls: u64,
    /// Replacement workers started by the watchdog.
    pub pool_restarts: u64,
    /// Median completion latency (µs, admission to done).
    pub p50_us: u64,
    /// 99th-percentile completion latency (µs).
    pub p99_us: u64,
    /// 99.9th-percentile completion latency (µs).
    pub p999_us: u64,
    /// Max completion latency (µs).
    pub max_us: u64,
    /// Offered load: submissions per second of wall time.
    pub offered_rps: f64,
    /// Goodput: completions per second of wall time.
    pub goodput_rps: f64,
    /// Wall-clock time of the run, submit of the first request to end of
    /// drain (ms).
    pub wall_ms: u64,
    /// `"ok"` or the conservation-check failure description.
    pub conservation: String,
}

fn canon6(x: f64) -> f64 {
    format!("{x:.6}").parse().expect("formatted float reparses")
}

/// Nearest-rank percentile over an ascending-sorted slice (0 on empty).
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run one open-loop load replay. Returns the report plus the recorded
/// observability trace (empty unless `cfg.record_trace`).
pub fn run_load(cfg: &LoadConfig) -> (ServeReport, ObsTrace) {
    let set = RouteRequestSet::new(cfg.scale);
    let n = set.nrequests();
    let mut serve_cfg = ServeConfig::new(cfg.domains, cfg.workers_per_domain)
        .with_capacity(cfg.queue_capacity)
        .with_budget(cfg.budget_units)
        .with_retry(
            cfg.max_attempts,
            Duration::from_micros(200),
            Duration::from_millis(10),
        )
        .with_stall_timeout(Duration::from_millis(250));
    if cfg.record_trace {
        serve_cfg = serve_cfg.with_trace();
    }
    let server = match &cfg.faults {
        Some(plan) => WorkServer::with_faults(serve_cfg, plan.clone()),
        None => WorkServer::new(serve_cfg),
    };

    // Deterministic open-loop arrival schedule: uniform gaps over
    // [0, 2 * mean], drawn from an xorshift* stream of the seed.
    let mut state = (cfg.seed ^ 0xA11C_E5ED_5EED_1E55) | 1;
    let mut gap = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        Duration::from_micros(state % (2 * cfg.mean_interarrival_us.max(1) + 1))
    };

    let start = Instant::now();
    for i in 0..n {
        std::thread::sleep(gap());
        let req = Request::new(i as u64, set.shard_of(i), set.cost_units(i), set.request_body(i));
        match server.submit(req) {
            Ok(_) | Err(SubmitError::Shed(_)) => {}
            Err(e) => panic!("unexpected submit refusal for request {i}: {e}"),
        }
    }
    server.drain();
    let wall = start.elapsed();

    let stats = server.stats();
    let outcomes = server.outcomes();
    let mut lost = 0u64;
    let mut double_executed = 0u64;
    let mut completed_ids: Vec<usize> = Vec::new();
    let mut lat_us: Vec<u64> = Vec::new();
    for (id, rec) in &outcomes {
        if rec.body_successes > 1 {
            double_executed += 1;
        }
        match &rec.outcome {
            None => lost += 1,
            Some(Outcome::Completed { latency, .. }) => {
                completed_ids.push(*id as usize);
                lat_us.push(latency.as_micros() as u64);
            }
            Some(_) => {}
        }
    }
    lat_us.sort_unstable();
    let conservation = match set.verify_conservation(&completed_ids) {
        Ok(()) => "ok".to_string(),
        Err(e) => e,
    };
    let wall_s = wall.as_secs_f64().max(1e-9);
    let report = ServeReport {
        app: "locusroute".into(),
        scale: cfg.scale.name().into(),
        seed: cfg.seed,
        requests: n as u64,
        domains: cfg.domains as u64,
        workers_per_domain: cfg.workers_per_domain as u64,
        queue_capacity: cfg.queue_capacity as u64,
        max_attempts: cfg.max_attempts as u64,
        mean_interarrival_us: cfg.mean_interarrival_us,
        chaos: cfg.faults.is_some(),
        submitted: stats.submitted,
        admitted: stats.admitted,
        shed: stats.shed,
        completed: stats.completed,
        failed: stats.failed,
        timed_out: stats.timed_out,
        lost,
        double_executed,
        retries: stats.retries,
        injected_failures: stats.injected_failures,
        intake_stalls: stats.intake_stalls,
        pool_restarts: stats.pool_restarts,
        p50_us: percentile_us(&lat_us, 0.50),
        p99_us: percentile_us(&lat_us, 0.99),
        p999_us: percentile_us(&lat_us, 0.999),
        max_us: lat_us.last().copied().unwrap_or(0),
        offered_rps: canon6(stats.submitted as f64 / wall_s),
        goodput_rps: canon6(stats.completed as f64 / wall_s),
        wall_ms: wall.as_millis() as u64,
        conservation,
    };
    (report, server.take_obs())
}

impl ServeReport {
    /// The report as a `cool-serve-v1` JSON document. Fixed key order and
    /// number formatting: equal reports produce equal bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SERVE_SCHEMA}\",\n"));
        s.push_str(&format!("  \"app\": \"{}\",\n", self.app));
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"domains\": {},\n", self.domains));
        s.push_str(&format!(
            "  \"workers_per_domain\": {},\n",
            self.workers_per_domain
        ));
        s.push_str(&format!("  \"queue_capacity\": {},\n", self.queue_capacity));
        s.push_str(&format!("  \"max_attempts\": {},\n", self.max_attempts));
        s.push_str(&format!(
            "  \"mean_interarrival_us\": {},\n",
            self.mean_interarrival_us
        ));
        s.push_str(&format!("  \"chaos\": {},\n", self.chaos));
        s.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        s.push_str(&format!("  \"admitted\": {},\n", self.admitted));
        s.push_str(&format!("  \"shed\": {},\n", self.shed));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"failed\": {},\n", self.failed));
        s.push_str(&format!("  \"timed_out\": {},\n", self.timed_out));
        s.push_str(&format!("  \"lost\": {},\n", self.lost));
        s.push_str(&format!("  \"double_executed\": {},\n", self.double_executed));
        s.push_str(&format!("  \"retries\": {},\n", self.retries));
        s.push_str(&format!(
            "  \"injected_failures\": {},\n",
            self.injected_failures
        ));
        s.push_str(&format!("  \"intake_stalls\": {},\n", self.intake_stalls));
        s.push_str(&format!("  \"pool_restarts\": {},\n", self.pool_restarts));
        s.push_str(&format!("  \"p50_us\": {},\n", self.p50_us));
        s.push_str(&format!("  \"p99_us\": {},\n", self.p99_us));
        s.push_str(&format!("  \"p999_us\": {},\n", self.p999_us));
        s.push_str(&format!("  \"max_us\": {},\n", self.max_us));
        s.push_str(&format!("  \"offered_rps\": {:.6},\n", self.offered_rps));
        s.push_str(&format!("  \"goodput_rps\": {:.6},\n", self.goodput_rps));
        s.push_str(&format!("  \"wall_ms\": {},\n", self.wall_ms));
        s.push_str(&format!("  \"conservation\": \"{}\"\n", self.conservation));
        s.push_str("}\n");
        s
    }

    /// Parse the exact shape [`ServeReport::to_json`] writes. Returns the
    /// first problem found.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut fields: Vec<(String, String)> = Vec::new();
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if line.is_empty() || line == "{" || line == "}" {
                continue;
            }
            let Some((k, v)) = line.split_once(':') else {
                return Err(format!("unparseable line {line:?}"));
            };
            let k = k
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("bad key in line {line:?}"))?;
            fields.push((k.to_string(), v.trim().to_string()));
        }
        let get = |k: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("missing field {k:?}"))
        };
        let get_str = |k: &str| -> Result<String, String> {
            let v = get(k)?;
            v.strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .map(str::to_string)
                .ok_or_else(|| format!("field {k:?} is not a string: {v}"))
        };
        let get_u64 = |k: &str| -> Result<u64, String> {
            get(k)?.parse::<u64>().map_err(|e| format!("field {k:?}: {e}"))
        };
        let get_f64 = |k: &str| -> Result<f64, String> {
            get(k)?.parse::<f64>().map_err(|e| format!("field {k:?}: {e}"))
        };
        let get_bool = |k: &str| -> Result<bool, String> {
            get(k)?.parse::<bool>().map_err(|e| format!("field {k:?}: {e}"))
        };
        let schema = get_str("schema")?;
        if schema != SERVE_SCHEMA {
            return Err(format!("schema {schema:?}, expected {SERVE_SCHEMA:?}"));
        }
        Ok(ServeReport {
            app: get_str("app")?,
            scale: get_str("scale")?,
            seed: get_u64("seed")?,
            requests: get_u64("requests")?,
            domains: get_u64("domains")?,
            workers_per_domain: get_u64("workers_per_domain")?,
            queue_capacity: get_u64("queue_capacity")?,
            max_attempts: get_u64("max_attempts")?,
            mean_interarrival_us: get_u64("mean_interarrival_us")?,
            chaos: get_bool("chaos")?,
            submitted: get_u64("submitted")?,
            admitted: get_u64("admitted")?,
            shed: get_u64("shed")?,
            completed: get_u64("completed")?,
            failed: get_u64("failed")?,
            timed_out: get_u64("timed_out")?,
            lost: get_u64("lost")?,
            double_executed: get_u64("double_executed")?,
            retries: get_u64("retries")?,
            injected_failures: get_u64("injected_failures")?,
            intake_stalls: get_u64("intake_stalls")?,
            pool_restarts: get_u64("pool_restarts")?,
            p50_us: get_u64("p50_us")?,
            p99_us: get_u64("p99_us")?,
            p999_us: get_u64("p999_us")?,
            max_us: get_u64("max_us")?,
            offered_rps: get_f64("offered_rps")?,
            goodput_rps: get_f64("goodput_rps")?,
            wall_ms: get_u64("wall_ms")?,
            conservation: get_str("conservation")?,
        })
    }

    /// Structural + accounting invariants every report must satisfy,
    /// independent of chaos settings: books balance and nothing was lost or
    /// double-run. This is the schema gate CI applies.
    pub fn validate(&self) -> Result<(), String> {
        if self.admitted + self.shed != self.submitted {
            return Err(format!(
                "admission books do not balance: {} admitted + {} shed != {} submitted",
                self.admitted, self.shed, self.submitted
            ));
        }
        if self.completed + self.failed + self.timed_out + self.lost != self.admitted {
            return Err(format!(
                "outcome books do not balance: {} + {} + {} + {} != {} admitted",
                self.completed, self.failed, self.timed_out, self.lost, self.admitted
            ));
        }
        if self.lost != 0 {
            return Err(format!("{} requests lost", self.lost));
        }
        if self.double_executed != 0 {
            return Err(format!("{} requests double-executed", self.double_executed));
        }
        if self.conservation != "ok" {
            return Err(format!("conservation check failed: {}", self.conservation));
        }
        if self.completed > 0 && (self.p50_us > self.p99_us || self.p99_us > self.p999_us) {
            return Err("latency percentiles are not monotone".into());
        }
        Ok(())
    }
}

/// Validate a `cool-serve-v1` document: parses, satisfies the accounting
/// invariants, and re-serializes byte-identically (the byte-stability
/// contract shared with `cool-metrics-v1`).
pub fn validate_serve_json(text: &str) -> Result<ServeReport, String> {
    let report = ServeReport::parse(text)?;
    report.validate()?;
    let again = report.to_json();
    if again != text {
        return Err("document is not in canonical form (reserialization differs)".into());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            app: "locusroute".into(),
            scale: "small".into(),
            seed: 42,
            requests: 100,
            domains: 2,
            workers_per_domain: 1,
            queue_capacity: 4,
            max_attempts: 3,
            mean_interarrival_us: 30,
            chaos: true,
            submitted: 100,
            admitted: 80,
            shed: 20,
            completed: 78,
            failed: 1,
            timed_out: 1,
            lost: 0,
            double_executed: 0,
            retries: 9,
            injected_failures: 9,
            intake_stalls: 1,
            pool_restarts: 0,
            p50_us: 800,
            p99_us: 4_000,
            p999_us: 6_000,
            max_us: 6_500,
            offered_rps: 25_000.0,
            goodput_rps: 19_500.0,
            wall_ms: 4,
            conservation: "ok".into(),
        }
    }

    #[test]
    fn report_roundtrips_byte_identically() {
        let r = sample();
        let json = r.to_json();
        let back = ServeReport::parse(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), json);
        validate_serve_json(&json).unwrap();
    }

    #[test]
    fn validation_rejects_broken_books() {
        let mut r = sample();
        r.shed = 19;
        assert!(r.validate().is_err(), "admission imbalance must fail");
        let mut r = sample();
        r.lost = 1;
        r.completed = 77;
        assert!(r.validate().is_err(), "lost requests must fail");
        let mut r = sample();
        r.double_executed = 1;
        assert!(r.validate().is_err(), "double execution must fail");
        let mut r = sample();
        r.conservation = "occupancy 10 != committed 12".into();
        assert!(r.validate().is_err(), "conservation failure must fail");
        let json = sample().to_json().replace(SERVE_SCHEMA, "cool-serve-v0");
        assert!(ServeReport::parse(&json).is_err());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 0.50), 50);
        assert_eq!(percentile_us(&v, 0.99), 99);
        assert_eq!(percentile_us(&v, 0.999), 100);
        assert_eq!(percentile_us(&[], 0.5), 0);
        assert_eq!(percentile_us(&[7], 0.999), 7);
    }

    #[test]
    fn smoke_profile_is_pinned_and_chaotic() {
        let cfg = smoke_config(42, true);
        let plan = cfg.faults.as_ref().unwrap();
        assert!(plan.should_fail_request(0) && plan.should_fail_request(2));
        assert!(plan.request_fail_count() >= 3);
        assert!(plan.domain_slow_units(0) > 0);
        assert!(plan.intake_stall_units(3) > 0);
        // Chaos is seed-deterministic.
        assert_eq!(chaos_plan(42), chaos_plan(42));
    }
}
