//! Ablations of the design choices DESIGN.md calls out — each isolates one
//! mechanism and shows what the figures would look like without it.
//!
//! * [`contention`] — memory-module bandwidth: the paper's Figure 14 claims
//!   "simply distributing the panels improves performance due to better
//!   utilization of the available memory bandwidth"; with the contention
//!   model off, distribution alone does (almost) nothing.
//! * [`placement`] — explicit `distribute()` vs OS first-touch vs page
//!   interleaving vs none, on Ocean (the Sections 7/8 automatic-placement
//!   question).
//! * [`affinity_slots`] — the Section 5 claim that collisions between
//!   task-affinity sets "can be minimized by choosing a suitably large
//!   array size": shrink the affinity-queue array and watch back-to-back
//!   reuse degrade.
//! * [`prefetch`] — the Section 4.1 multi-object heuristic plus Section 8's
//!   prefetching: schedule on the heaviest object's home and prefetch the
//!   remote ones.

use std::cell::RefCell;
use std::rc::Rc;

use apps::ocean::PlacementPolicy;
use apps::{ocean, panel_cholesky, Version};
use sparse::ordering::{minimum_degree, reverse_cuthill_mckee};
use sparse::Permutation;
use cool_core::affinity::resolve_multi_object;
use cool_core::AffinitySpec;
use cool_sim::{MachineConfig, SimConfig, SimRuntime, Task};
use workloads::matrices::grid_laplacian;
use workloads::ocean::OceanParams;

/// A labelled ablation measurement.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Which ablation experiment the row belongs to.
    pub experiment: &'static str,
    /// The variant being measured (e.g. a policy or machine knob).
    pub variant: String,
    /// Simulated execution time in cycles.
    pub elapsed: u64,
    /// Total cache misses.
    pub misses: u64,
    /// Fraction of misses serviced locally.
    pub local_frac: f64,
}

/// Print ablation rows as TSV.
pub fn print_ablation(rows: &[AblationRow]) {
    println!("experiment\tvariant\telapsed\tmisses\tlocal%");
    for r in rows {
        println!(
            "{}\t{}\t{}\t{}\t{:.1}",
            r.experiment,
            r.variant,
            r.elapsed,
            r.misses,
            r.local_frac * 100.0
        );
    }
}

/// Bandwidth ablation: Panel Cholesky Base vs Distr, with the contention
/// model on and off, at `nprocs`.
pub fn contention(nprocs: usize) -> Vec<AblationRow> {
    let prob = panel_cholesky::PanelProblem::analyse(&panel_cholesky::PanelParams {
        matrix: grid_laplacian(24),
        max_panel_width: 8,
    });
    let mut rows = Vec::new();
    for occupancy in [0u64, 30] {
        for v in [Version::Base, Version::Distr] {
            let mut machine = MachineConfig::dash(nprocs);
            machine.mem_occupancy = occupancy;
            let cfg = SimConfig::new(machine).with_policy(v.policy());
            let rep = panel_cholesky::run(cfg, &prob, v);
            rows.push(AblationRow {
                experiment: "contention",
                variant: format!("occupancy={occupancy} {}", v.label()),
                elapsed: rep.run.elapsed,
                misses: rep.run.mem.misses(),
                local_frac: rep.run.mem.local_fraction(),
            });
        }
    }
    rows
}

/// Placement ablation: Ocean under four placement policies, affinity hints
/// on (except Central+round-robin as reference "none").
pub fn placement(nprocs: usize) -> Vec<AblationRow> {
    let params = OceanParams {
        n: 128,
        num_grids: 12,
        regions: 32,
        sweeps: 3,
        seed: 3,
    };
    let mut rows = Vec::new();
    for (label, policy, version) in [
        ("central", PlacementPolicy::Central, Version::Affinity),
        ("explicit-distribute", PlacementPolicy::Explicit, Version::AffinityDistr),
        ("first-touch", PlacementPolicy::FirstTouch, Version::Affinity),
        ("interleaved", PlacementPolicy::Interleaved, Version::Affinity),
    ] {
        let cfg = SimConfig::new(MachineConfig::dash(nprocs)).with_policy(version.policy());
        let rep = ocean::run_with_placement(cfg, &params, version, policy);
        assert!(rep.max_error < 1e-9, "placement {label} changed results");
        rows.push(AblationRow {
            experiment: "placement",
            variant: label.to_string(),
            elapsed: rep.run.elapsed,
            misses: rep.run.mem.misses(),
            local_frac: rep.run.mem.local_fraction(),
        });
    }
    rows
}

/// Affinity-array-size ablation: many task-affinity sets forced through
/// arrays of decreasing size. With one slot every set collides: service
/// interleaves sets and cache reuse collapses.
pub fn affinity_slots(nprocs: usize) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for slots in [64usize, 8, 1] {
        let mut cfg = SimConfig::new(MachineConfig::dash(nprocs));
        cfg.affinity_slots = slots;
        let mut rt = SimRuntime::new(cfg);
        // 16 sets of 16 tasks, each set repeatedly scanning its own 32 KB
        // buffer; all sets hash to the few processors, so slot collisions
        // directly interleave their service order.
        let nsets = 16u64;
        let buf_bytes = 32 * 1024u64;
        let objs: Vec<_> = (0..nsets)
            .map(|i| rt.machine_mut().alloc_on_proc(i as usize % nprocs, buf_bytes))
            .collect();
        rt.reset_monitor();
        rt.run_phase(move |ctx| {
            for round in 0..16 {
                for (i, &obj) in objs.iter().enumerate() {
                    let _ = round;
                    ctx.spawn(
                        Task::new(move |c| {
                            c.read(obj, buf_bytes);
                            c.compute(500);
                        })
                        .with_affinity(AffinitySpec::task(ObjRefExt::same(obj)).and_object(obj)),
                    );
                    let _ = i;
                }
            }
        });
        let rep = rt.report();
        rows.push(AblationRow {
            experiment: "affinity_slots",
            variant: format!("slots={slots}"),
            elapsed: rep.elapsed,
            misses: rep.mem.misses(),
            local_frac: rep.mem.local_fraction(),
        });
    }
    rows
}

/// Tiny helper so the intent (token == object) reads clearly above.
struct ObjRefExt;
impl ObjRefExt {
    fn same(o: cool_core::ObjRef) -> cool_core::ObjRef {
        o
    }
}

/// Task-granularity ablation (Panel Cholesky): panel width controls the
/// locality/parallelism trade-off — width 1 maximises parallelism but pays
/// per-task overhead and loses supernodal reuse; very wide panels starve the
/// machine. The paper's panels (Rothberg & Gupta) sit in the middle.
pub fn granularity(nprocs: usize) -> Vec<AblationRow> {
    // A banded matrix has wide fundamental supernodes, so the width cap
    // actually bites (a 2-D grid's supernodes are mostly single columns).
    let a = workloads::matrices::banded_spd(768, 24, 5);
    let mut rows = Vec::new();
    for width in [1usize, 8, 48] {
        let prob = panel_cholesky::PanelProblem::analyse(&panel_cholesky::PanelParams {
            matrix: a.clone(),
            max_panel_width: width,
        });
        let cfg = SimConfig::new(MachineConfig::dash(nprocs))
            .with_policy(Version::AffinityDistr.policy());
        let rep = panel_cholesky::run(cfg, &prob, Version::AffinityDistr);
        assert!(rep.max_error < 1e-8);
        rows.push(AblationRow {
            experiment: "granularity",
            variant: format!("panel_width={width} ({} panels)", prob.panels.len()),
            elapsed: rep.run.elapsed,
            misses: rep.run.mem.misses(),
            local_frac: rep.run.mem.local_fraction(),
        });
    }
    rows
}

/// Decomposition ablation (Ocean): the paper picked row regions over
/// rectangular blocks. Blocks halve the halo perimeter, but their rows
/// stride across pages, so page-granular `migrate` cannot give each block a
/// clean home — placement quality and halo volume trade off.
pub fn decomposition(nprocs: usize) -> Vec<AblationRow> {
    use apps::ocean::{run_full, Decomposition, PlacementPolicy};
    let params = OceanParams {
        n: 128,
        num_grids: 12,
        regions: 16,
        sweeps: 3,
        seed: 3,
    };
    let mut rows = Vec::new();
    for (label, decomp) in [
        ("rows-16", Decomposition::Rows),
        ("blocks-4x4", Decomposition::Blocks { br: 4, bc: 4 }),
    ] {
        let cfg = SimConfig::new(MachineConfig::dash(nprocs))
            .with_policy(Version::AffinityDistr.policy());
        let rep = run_full(
            cfg,
            &params,
            Version::AffinityDistr,
            PlacementPolicy::Explicit,
            decomp,
        );
        assert!(rep.max_error < 1e-9);
        rows.push(AblationRow {
            experiment: "decomposition",
            variant: label.to_string(),
            elapsed: rep.run.elapsed,
            misses: rep.run.mem.misses(),
            local_frac: rep.run.mem.local_fraction(),
        });
    }
    rows
}

/// Whole-set stealing ablation (Section 4.2: task-affinity sets "can be
/// stolen as a set by an idle processor to improve load balance and still
/// benefit from cache locality"). Pure TASK-affinity sets (stealable by
/// polite thieves) hash onto a few overloaded servers; whole-set thieves
/// keep each stolen set's buffer hot, single-task thieves scatter a set
/// across processors and each pays the cold misses.
pub fn steal_sets(nprocs: usize) -> Vec<AblationRow> {
    use std::rc::Rc;
    let mut rows = Vec::new();
    for (label, whole) in [("whole-set", true), ("single-task", false)] {
        let policy = cool_core::StealPolicy {
            steal_whole_sets: whole,
            ..Default::default()
        };
        let cfg = SimConfig::new(MachineConfig::dash(nprocs)).with_policy(policy);
        let mut rt = SimRuntime::new(cfg);
        // More sets than thieves, all hoarded on server 0 (TASK affinity
        // with explicit PROCESSOR placement): each thief can carry away a
        // different whole set and run it back to back. With single-task
        // stealing the sets fragment and every fragment rescans its buffer
        // cold. (The converse regime — fewer sets than thieves — makes
        // whole sets ping-pong instead; that is why it is a policy knob.)
        let nsets = (2 * nprocs) as u64;
        let tasks_per_set = 16usize;
        let buf_bytes = 32 * 1024u64;
        let objs: Vec<_> = (0..nsets)
            .map(|_| rt.machine_mut().alloc_on_proc(0, buf_bytes))
            .collect();
        rt.reset_monitor();
        let objs2 = Rc::new(objs);
        rt.run_phase(move |ctx| {
            for t in 0..tasks_per_set {
                for &obj in objs2.iter() {
                    let _ = t;
                    ctx.spawn(
                        Task::new(move |c| {
                            c.read(obj, buf_bytes);
                            c.compute(2_000);
                        })
                        .with_affinity(AffinitySpec::task(obj).and_processor(0)),
                    );
                }
            }
        });
        let rep = rt.report();
        rows.push(AblationRow {
            experiment: "steal_sets",
            variant: label.to_string(),
            elapsed: rep.elapsed,
            misses: rep.mem.misses(),
            local_frac: rep.mem.local_fraction(),
        });
    }
    rows
}

/// Ordering ablation: Panel Cholesky under natural, RCM and minimum-degree
/// orderings of the same grid Laplacian. Fill determines both the flop count
/// and the factor's footprint, so the ordering moves the entire figure.
pub fn ordering(nprocs: usize) -> Vec<AblationRow> {
    let a = grid_laplacian(24);
    let mut rows = Vec::new();
    let perms: [(&str, Permutation); 3] = [
        ("natural", Permutation::identity(a.n())),
        ("rcm", reverse_cuthill_mckee(&a)),
        ("minimum-degree", minimum_degree(&a)),
    ];
    for (label, p) in perms {
        let pa = a.permute_sym(&p);
        let prob = panel_cholesky::PanelProblem::analyse(&panel_cholesky::PanelParams {
            matrix: pa,
            max_panel_width: 8,
        });
        let fill = prob.sym.fill_in(&prob.a);
        let cfg = SimConfig::new(MachineConfig::dash(nprocs))
            .with_policy(Version::AffinityDistr.policy());
        let rep = panel_cholesky::run(cfg, &prob, Version::AffinityDistr);
        assert!(rep.max_error < 1e-8, "ordering {label} broke the factorization");
        rows.push(AblationRow {
            experiment: "ordering",
            variant: format!("{label} (fill={fill})"),
            elapsed: rep.run.elapsed,
            misses: rep.run.mem.misses(),
            local_frac: rep.run.mem.local_fraction(),
        });
    }
    rows
}

/// Multi-object affinity + prefetch ablation. Tasks read two objects of
/// different sizes homed on different processors:
///
/// * `first-object` — the paper's current rule: schedule on the first
///   object's home (which here is the *smaller* object);
/// * `heaviest-object` — Section 4.1's proposed heuristic;
/// * `heaviest+prefetch` — additionally prefetch the remote object
///   (Section 8's ongoing work).
pub fn prefetch(nprocs: usize) -> Vec<AblationRow> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        FirstObject,
        Heaviest,
        HeaviestPrefetch,
    }
    let mut rows = Vec::new();
    for (label, mode) in [
        ("first-object", Mode::FirstObject),
        ("heaviest-object", Mode::Heaviest),
        ("heaviest+prefetch", Mode::HeaviestPrefetch),
    ] {
        let mut rt = SimRuntime::new(SimConfig::new(MachineConfig::dash(nprocs)));
        let small_bytes = 2 * 1024u64;
        let big_bytes = 32 * 1024u64;
        let ntasks = 128usize;
        // Each task's two objects live in *different clusters*, so where the
        // task runs decides which one is remote.
        let nclusters = nprocs.div_ceil(4).max(2);
        let smalls: Vec<_> = (0..ntasks)
            .map(|i| rt.machine_mut().alloc_on_proc((i % nclusters) * 4, small_bytes))
            .collect();
        let bigs: Vec<_> = (0..ntasks)
            .map(|i| {
                rt.machine_mut()
                    .alloc_on_proc(((i + nclusters / 2) % nclusters) * 4, big_bytes)
            })
            .collect();
        rt.reset_monitor();
        let touched = Rc::new(RefCell::new(0u64));
        let t2 = touched.clone();
        rt.run_phase(move |ctx| {
            for i in 0..ntasks {
                let (s, b) = (smalls[i], bigs[i]);
                let t = t2.clone();
                let body = move |c: &mut cool_sim::TaskCtx<'_>| {
                    c.read(s, small_bytes);
                    c.read(b, big_bytes);
                    c.compute(2000);
                    *t.borrow_mut() += 1;
                };
                // The affinity block lists the small object *first*.
                let task = match mode {
                    Mode::FirstObject => {
                        Task::new(body).with_affinity(AffinitySpec::object(s))
                    }
                    Mode::Heaviest | Mode::HeaviestPrefetch => {
                        let home = |o| ctx_home(ctx, o);
                        let (_, remote) = resolve_multi_object(
                            &[(s, small_bytes), (b, big_bytes)],
                            home,
                        )
                        .expect("two objects");
                        // Heaviest is the big object: OBJECT affinity on it.
                        let mut task =
                            Task::new(body).with_affinity(AffinitySpec::object(b));
                        if mode == Mode::HeaviestPrefetch {
                            task = task.with_prefetch(
                                remote.into_iter().map(|o| (o, small_bytes)).collect(),
                            );
                        }
                        task
                    }
                };
                ctx.spawn(task);
            }
        });
        assert_eq!(*touched.borrow(), ntasks as u64);
        let rep = rt.report();
        rows.push(AblationRow {
            experiment: "multiobj_prefetch",
            variant: label.to_string(),
            elapsed: rep.elapsed,
            misses: rep.mem.misses(),
            local_frac: rep.mem.local_fraction(),
        });
    }
    rows
}

fn ctx_home(ctx: &cool_sim::TaskCtx<'_>, o: cool_core::ObjRef) -> cool_core::ProcId {
    ctx.home(o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_ablation_shows_the_bandwidth_effect() {
        let rows = contention(16);
        let get = |variant: &str| {
            rows.iter()
                .find(|r| r.variant == variant)
                .map(|r| r.elapsed as f64)
                .unwrap()
        };
        let gain_without = get("occupancy=0 Base") / get("occupancy=0 Distr");
        let gain_with = get("occupancy=30 Base") / get("occupancy=30 Distr");
        // Distribution helps (relative to Base) strictly more when bandwidth
        // is modelled.
        assert!(
            gain_with > gain_without,
            "bandwidth effect missing: with={gain_with:.3} without={gain_without:.3}"
        );
    }

    #[test]
    fn placement_ablation_orders_policies_sensibly() {
        let rows = placement(16);
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap();
        // Any distribution beats central allocation.
        for v in ["explicit-distribute", "first-touch", "interleaved"] {
            assert!(
                get(v).local_frac > get("central").local_frac,
                "{v} did not improve locality over central"
            );
        }
        // Explicit distribution (placement matched to the task mapping) is
        // at least as local as blind interleaving.
        assert!(
            get("explicit-distribute").local_frac >= get("interleaved").local_frac
        );
    }

    #[test]
    fn slot_collisions_degrade_cache_reuse() {
        let rows = affinity_slots(8);
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap();
        assert!(
            get("slots=1").misses > get("slots=64").misses,
            "collisions should interleave sets and raise misses: {} vs {}",
            get("slots=1").misses,
            get("slots=64").misses
        );
    }

    #[test]
    fn overwide_panels_starve_parallelism() {
        let rows = granularity(8);
        let mid = rows.iter().find(|r| r.variant.starts_with("panel_width=8 ")).unwrap();
        let wide = rows.iter().find(|r| r.variant.starts_with("panel_width=48 ")).unwrap();
        // Over-wide panels serialise the elimination chains of the band;
        // moderate panels win.
        assert!(
            mid.elapsed < wide.elapsed,
            "moderate panels should beat over-wide ones: {} vs {}",
            mid.elapsed,
            wide.elapsed
        );
    }

    #[test]
    fn row_decomposition_beats_blocks_under_page_placement() {
        let rows = decomposition(16);
        let get = |v: &str| rows.iter().find(|r| r.variant.starts_with(v)).unwrap();
        // Blocks share pages horizontally, so page-granular migration homes
        // every horizontal neighbour group on one processor — collocation
        // then piles their tasks there and stealing has to unpick it. Rows
        // win on both time and misses, which is exactly why the paper chose
        // the "single array of regions".
        assert!(
            get("rows").elapsed < get("blocks").elapsed,
            "rows {} vs blocks {}",
            get("rows").elapsed,
            get("blocks").elapsed
        );
    }

    #[test]
    fn whole_set_stealing_preserves_cache_reuse() {
        let rows = steal_sets(16);
        let whole = rows.iter().find(|r| r.variant == "whole-set").unwrap();
        let single = rows.iter().find(|r| r.variant == "single-task").unwrap();
        assert!(
            whole.misses < single.misses,
            "whole-set steals should keep buffers hot: {} vs {}",
            whole.misses,
            single.misses
        );
    }

    #[test]
    fn minimum_degree_speeds_up_the_factorization() {
        let rows = ordering(8);
        let natural = rows
            .iter()
            .find(|r| r.variant.starts_with("natural"))
            .unwrap();
        let md = rows
            .iter()
            .find(|r| r.variant.starts_with("minimum-degree"))
            .unwrap();
        assert!(
            md.elapsed < natural.elapsed,
            "less fill should mean less time: {} vs {}",
            md.elapsed,
            natural.elapsed
        );
    }

    #[test]
    fn heaviest_object_and_prefetch_each_help() {
        let rows = prefetch(16);
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap();
        assert!(
            get("heaviest-object").elapsed < get("first-object").elapsed,
            "heaviest-home placement should win: {} vs {}",
            get("heaviest-object").elapsed,
            get("first-object").elapsed
        );
        assert!(
            get("heaviest+prefetch").elapsed < get("heaviest-object").elapsed,
            "prefetching the remote object should win again: {} vs {}",
            get("heaviest+prefetch").elapsed,
            get("heaviest-object").elapsed
        );
    }
}
