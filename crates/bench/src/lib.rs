//! Experiment drivers that regenerate every table and figure of the paper's
//! evaluation (Section 6). The `figures` binary prints them as TSV; the
//! criterion benches time scaled-down instances of the same drivers; the
//! workspace integration tests assert the qualitative shapes.
//!
//! | Paper exhibit | Driver |
//! |---|---|
//! | Table 1 (affinity hints)            | [`table1`] |
//! | Figure 1 (memory hierarchy)         | [`machine_table`] |
//! | Figures 5–7 (Ocean)                 | [`fig_ocean`] |
//! | Figures 8–10 (LocusRoute speedups)  | [`fig_locusroute`] |
//! | Figure 11 (LocusRoute misses)       | same rows, miss columns |
//! | Figures 12–14 (Panel Cholesky)      | [`fig_panel_cholesky`] |
//! | Figure 15 (Panel Cholesky misses)   | same rows, miss columns |
//! | Figure 16 (Barnes-Hut & Block Ch.)  | [`fig_barnes_hut`], [`fig_block_cholesky`] |
//! | Figure 3 (GE affinity example)      | [`fig_gauss`] |
//! | §1/§8 headline (60–135%)            | [`summary`] |

#![warn(missing_docs)]

pub mod ablation;
pub mod perf;
pub mod repro;
pub mod serve;

use apps::driver::{self, AppScale};
use apps::{
    barnes_hut, block_cholesky, common, gauss, locusroute, ocean, panel_cholesky, AppReport,
    Version,
};
use cool_sim::{MachineConfig, SimConfig};
use dash_sim::ContentionConfig;
use workloads::ocean::OceanParams;

/// One data point of a figure: a (series, processor-count) cell with every
/// quantity the paper plots.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Exhibit id, e.g. `"fig10"`.
    pub figure: &'static str,
    /// Series label (`Base`, `Affinity`, ...).
    pub series: &'static str,
    /// Processors.
    pub nprocs: usize,
    /// Speedup of the parallel section vs the 1-processor serial baseline.
    pub speedup: f64,
    /// Elapsed virtual cycles.
    pub elapsed: u64,
    /// Total cache misses (the Figure 11/15 quantity).
    pub misses: u64,
    /// Fraction of misses serviced in local memory.
    pub local_frac: f64,
    /// Affinity adherence (fraction of hinted tasks on their hinted server).
    pub adherence: f64,
    /// Queue-wait cycles summed over all contention resources (0 when the
    /// run used the zero-contention fast path).
    pub wait_cycles: u64,
    /// Numeric deviation from the sequential reference (must be ~0).
    pub max_error: f64,
}

impl FigureRow {
    fn from_report(
        figure: &'static str,
        series: &'static str,
        rep: &AppReport,
        serial: u64,
    ) -> Self {
        FigureRow {
            figure,
            series,
            nprocs: rep.run.nprocs,
            speedup: rep.speedup(serial),
            elapsed: rep.run.elapsed,
            misses: rep.run.mem.misses(),
            local_frac: rep.run.mem.local_fraction(),
            adherence: rep.run.stats.adherence(),
            wait_cycles: rep.run.contention.total_wait(),
            max_error: rep.max_error,
        }
    }
}

/// Print rows as a TSV table with a header (formatted by the repro
/// renderer, so the `figures` binary and the sweep engine share one
/// definition of the table).
pub fn print_rows(rows: &[FigureRow]) {
    print!("{}", repro::render::figure_rows_tsv(rows));
}

/// Experiment scale: `Small` for tests and criterion (scaled-down machine
/// and inputs), `Full` for the figures binary (DASH-sized machine, inputs
/// that exceed the caches as the paper's did), `Deep` for the deep-topology
/// sweep (64-processor 3-level SMT/chiplet/socket machine).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Scaled-down machine and inputs for tests and criterion benches.
    Small,
    /// DASH-sized machine with cache-exceeding inputs (the paper's figures).
    Full,
    /// 64-processor 3-level SMT/chiplet/socket machine (deep-topology sweep).
    Deep,
}

impl Scale {
    /// The equivalent [`AppScale`] (the apps crate owns the pinned per-app
    /// parameter tables; `Scale` adds the bench-side machine/config
    /// helpers).
    pub fn app_scale(self) -> AppScale {
        match self {
            Scale::Small => AppScale::Small,
            Scale::Full => AppScale::Full,
            Scale::Deep => AppScale::Deep,
        }
    }

    /// Lower-case name used in output paths and progress lines.
    pub fn name(self) -> &'static str {
        self.app_scale().name()
    }

    /// Machine for `nprocs` processors. Both scales run the discrete-event
    /// contention engine with the DASH service times — the figures model
    /// queueing on buses, the mesh and directories, as the paper's machine
    /// did. (The zero-contention fast path stays reachable through
    /// `MachineConfig` directly; the lockstep equivalence suites pin it to
    /// the frozen oracle.)
    fn machine(self, nprocs: usize) -> MachineConfig {
        let m = match self {
            Scale::Small => MachineConfig::dash_small(nprocs),
            Scale::Full => MachineConfig::dash(nprocs),
            Scale::Deep => MachineConfig::deep_small(nprocs),
        };
        m.with_contention(ContentionConfig::dash())
    }

    /// Simulator config for `nprocs` processors under version `v`'s policy
    /// (plus `v`'s adaptation/rebalancer knobs — both `None` for every
    /// static version, so static fingerprints are untouched).
    pub fn config(self, nprocs: usize, v: Version) -> SimConfig {
        apps::apply_version(SimConfig::new(self.machine(nprocs)), v)
    }

    /// The processor counts the paper sweeps (Panel Cholesky stops at 24
    /// "due to limitations in the amount of physical memory").
    pub fn default_procs(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![1, 2, 4, 8],
            Scale::Full => vec![1, 2, 4, 8, 16, 24, 32],
            // One point per tier of the 3-level tree: lone processor, one
            // chiplet, one socket, the whole 64-processor machine.
            Scale::Deep => vec![1, 8, 32, 64],
        }
    }
}

fn ocean_params(scale: Scale) -> OceanParams {
    driver::ocean_params(scale.app_scale())
}

/// Figures 5–7: Ocean speedups and miss behaviour for Base / Distr /
/// Distr+Affinity (the paper's configuration is the last).
pub fn fig_ocean(procs: &[usize], scale: Scale) -> Vec<FigureRow> {
    let params = ocean_params(scale);
    let serial = ocean::run(scale.config(1, Version::Base), &params, Version::Base)
        .run
        .elapsed;
    let mut rows = Vec::new();
    for &v in &[Version::Base, Version::Distr, Version::AffinityDistr] {
        for &p in procs {
            let rep = ocean::run(scale.config(p, v), &params, v);
            rows.push(FigureRow::from_report("fig5-7_ocean", v.label(), &rep, serial));
        }
    }
    rows
}

fn locus_params(scale: Scale) -> locusroute::LocusParams {
    driver::locus_params(scale.app_scale())
}

/// Figures 8–11: LocusRoute speedups (Base / Affinity / Affinity+ObjDistr)
/// and cache-miss behaviour.
pub fn fig_locusroute(procs: &[usize], scale: Scale) -> Vec<FigureRow> {
    let params = locus_params(scale);
    let serial = locusroute::run(scale.config(1, Version::Base), &params, Version::Base)
        .run
        .elapsed;
    let mut rows = Vec::new();
    for &v in &[Version::Base, Version::Affinity, Version::AffinityDistr] {
        for &p in procs {
            let rep = locusroute::run(scale.config(p, v), &params, v);
            rows.push(FigureRow::from_report(
                "fig10-11_locusroute",
                v.label(),
                &rep,
                serial,
            ));
        }
    }
    rows
}

fn panel_problem(scale: Scale) -> panel_cholesky::PanelProblem {
    driver::panel_problem(scale.app_scale())
}

/// Figures 12–15: Panel Cholesky speedups (Base / Distr / Distr+Aff /
/// Distr+Aff+ClusterStealing, ≤ 24 processors in the paper) and misses.
pub fn fig_panel_cholesky(procs: &[usize], scale: Scale) -> Vec<FigureRow> {
    let prob = panel_problem(scale);
    let serial = panel_cholesky::run(scale.config(1, Version::Base), &prob, Version::Base)
        .run
        .elapsed;
    let mut rows = Vec::new();
    for &v in &[
        Version::Base,
        Version::Distr,
        Version::AffinityDistr,
        Version::AffinityDistrCluster,
    ] {
        for &p in procs {
            // The paper presents Panel Cholesky on up to 24 processors.
            if scale == Scale::Full && p > 24 {
                continue;
            }
            let rep = panel_cholesky::run(scale.config(p, v), &prob, v);
            rows.push(FigureRow::from_report(
                "fig14-15_panel",
                v.label(),
                &rep,
                serial,
            ));
        }
    }
    rows
}

fn block_params(scale: Scale) -> block_cholesky::BlockParams {
    driver::block_params(scale.app_scale())
}

/// Figure 16 (right): Block Cholesky with and without affinity hints.
pub fn fig_block_cholesky(procs: &[usize], scale: Scale) -> Vec<FigureRow> {
    let params = block_params(scale);
    let serial = block_cholesky::run(scale.config(1, Version::Base), &params, Version::Base)
        .run
        .elapsed;
    let mut rows = Vec::new();
    for &v in &[Version::Base, Version::AffinityDistr] {
        for &p in procs {
            let rep = block_cholesky::run(scale.config(p, v), &params, v);
            rows.push(FigureRow::from_report(
                "fig16_block",
                v.label(),
                &rep,
                serial,
            ));
        }
    }
    rows
}

fn bh_params(scale: Scale) -> barnes_hut::BhParams {
    driver::bh_params(scale.app_scale())
}

/// Figure 16 (left): Barnes-Hut with and without affinity hints.
pub fn fig_barnes_hut(procs: &[usize], scale: Scale) -> Vec<FigureRow> {
    let params = bh_params(scale);
    let serial = barnes_hut::run(scale.config(1, Version::Base), &params, Version::Base)
        .run
        .elapsed;
    let mut rows = Vec::new();
    for &v in &[Version::Base, Version::AffinityDistr] {
        for &p in procs {
            let rep = barnes_hut::run(scale.config(p, v), &params, v);
            rows.push(FigureRow::from_report(
                "fig16_barnes",
                v.label(),
                &rep,
                serial,
            ));
        }
    }
    rows
}

fn gauss_params(scale: Scale) -> gauss::GaussParams {
    driver::gauss_params(scale.app_scale())
}

/// Figure 3's example as an experiment: column GE with the TASK+OBJECT
/// affinity block vs round-robin.
pub fn fig_gauss(procs: &[usize], scale: Scale) -> Vec<FigureRow> {
    let params = gauss_params(scale);
    let serial = gauss::run(scale.config(1, Version::Base), &params, Version::Base)
        .run
        .elapsed;
    let mut rows = Vec::new();
    for &v in &[Version::Base, Version::Distr, Version::AffinityDistr] {
        for &p in procs {
            let rep = gauss::run(scale.config(p, v), &params, v);
            rows.push(FigureRow::from_report("fig3_gauss", v.label(), &rep, serial));
        }
    }
    rows
}

/// The §1/§8 headline: per application, the improvement of the best hinted
/// version over Base at a given processor count. The paper reports 60–135%.
pub fn summary(nprocs: usize, scale: Scale) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    let pick = |rows: &[FigureRow], series: &str| -> f64 {
        rows.iter()
            .find(|r| r.series == series && r.nprocs == nprocs)
            .map(|r| r.elapsed as f64)
            .unwrap_or(f64::NAN)
    };
    let procs = [nprocs];
    let o = fig_ocean(&procs, scale);
    out.push((
        "Ocean",
        pick(&o, "Base") / pick(&o, "Affinity+Distr") - 1.0,
    ));
    let l = fig_locusroute(&procs, scale);
    out.push((
        "LocusRoute",
        pick(&l, "Base") / pick(&l, "Affinity+Distr") - 1.0,
    ));
    // Panel Cholesky is presented on ≤ 24 processors (paper's memory limit).
    let panel_np = nprocs.min(24);
    let p = fig_panel_cholesky(&[panel_np], scale);
    let pick_at = |rows: &[FigureRow], series: &str, np: usize| -> f64 {
        rows.iter()
            .find(|r| r.series == series && r.nprocs == np)
            .map(|r| r.elapsed as f64)
            .unwrap_or(f64::NAN)
    };
    out.push((
        "PanelCholesky",
        pick_at(&p, "Base", panel_np)
            / pick_at(&p, "Affinity+Distr+ClusterSteal", panel_np)
            - 1.0,
    ));
    let b = fig_block_cholesky(&procs, scale);
    out.push((
        "BlockCholesky",
        pick(&b, "Base") / pick(&b, "Affinity+Distr") - 1.0,
    ));
    let n = fig_barnes_hut(&procs, scale);
    out.push((
        "BarnesHut",
        pick(&n, "Base") / pick(&n, "Affinity+Distr") - 1.0,
    ));
    let g = fig_gauss(&procs, scale);
    out.push((
        "Gauss",
        pick(&g, "Base") / pick(&g, "Affinity+Distr") - 1.0,
    ));
    out
}

/// Table 1: the affinity-hint summary, printable.
pub fn table1() -> Vec<[&'static str; 2]> {
    vec![
        [
            "default",
            "schedule on the processor owning the base object; run tasks on the same object back to back",
        ],
        [
            "affinity (obj)",
            "as default, but on the named object (cache + memory locality)",
        ],
        [
            "affinity (obj, TASK)",
            "tasks naming obj form a task-affinity set, executed back to back for cache reuse; stolen as a set",
        ],
        [
            "affinity (obj, OBJECT)",
            "collocate the task with obj's memory for memory locality; thieves avoid it",
        ],
        [
            "affinity (n, PROCESSOR)",
            "schedule directly on server n % nservers",
        ],
        [
            "new (n) T / migrate (obj, n) / home (obj)",
            "allocate on, move to, or query the processor whose local memory holds the object",
        ],
    ]
}

/// Figure 1: the modelled memory hierarchy (latency table).
pub fn machine_table(scale: Scale) -> Vec<(String, u64)> {
    let m = scale.machine(32);
    vec![
        ("L1 hit (cycles)".into(), m.lat.l1_hit),
        ("L2 hit (cycles)".into(), m.lat.l2_hit),
        ("local memory (cycles)".into(), m.lat.local_mem),
        ("remote memory (cycles)".into(), m.lat.remote_mem),
        ("dirty-cache penalty (cycles)".into(), m.lat.dirty_penalty),
        ("L1 size (bytes)".into(), m.l1.size_bytes),
        ("L2 size (bytes)".into(), m.l2.size_bytes),
        ("line (bytes)".into(), m.l1.line_bytes),
        ("page (bytes)".into(), m.page_bytes),
        ("processors/cluster".into(), m.procs_per_cluster as u64),
    ]
}

/// Re-export for the integration tests and figures binary.
pub use common::sim_config_small;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ocean_rows_are_complete_and_correct() {
        let rows = fig_ocean(&[1, 4], Scale::Small);
        assert_eq!(rows.len(), 3 * 2);
        for r in &rows {
            assert!(r.max_error < 1e-9, "{r:?}");
            assert!(r.speedup > 0.0);
        }
    }

    #[test]
    fn table1_covers_all_hints() {
        let t = table1();
        assert_eq!(t.len(), 6);
        assert!(t.iter().any(|row| row[0].contains("TASK")));
        assert!(t.iter().any(|row| row[0].contains("PROCESSOR")));
    }

    #[test]
    fn machine_table_reports_dash_latencies() {
        let t = machine_table(Scale::Full);
        assert!(t.iter().any(|(k, v)| k.starts_with("L1 hit") && *v == 1));
        assert!(t
            .iter()
            .any(|(k, v)| k.starts_with("remote") && *v >= 100 && *v <= 150));
    }
}
