//! # cool-repro
//!
//! A reproduction of *Data Locality and Load Balancing in COOL* (Chandra,
//! Gupta & Hennessy, PPoPP 1993) as a Rust workspace. This umbrella crate
//! re-exports the member crates so examples and integration tests can use a
//! single dependency:
//!
//! * [`cool_core`] — affinity hints, task-queue structure, steal policies.
//! * [`dash_sim`] — the DASH-like memory-hierarchy simulator.
//! * [`cool_sim`] — the simulated COOL runtime (reproduces paper figures).
//! * [`cool_rt`] — a real threaded work-stealing runtime with the same API.
//! * [`cool_obs`] — scheduler observability: Perfetto/Chrome trace export
//!   and the `cool-metrics-v1` summary over both backends' event streams.
//! * [`sparse`] — sparse Cholesky substrate (etree, symbolic, panels, blocks).
//! * [`workloads`] — deterministic SPLASH-style input generators.
//! * [`apps`] — the case studies: Ocean, LocusRoute, Panel Cholesky,
//!   Block Cholesky, Barnes-Hut, and Gaussian elimination.

pub use apps;
pub use cool_core;
pub use cool_obs;
pub use cool_rt;
pub use cool_sim;
pub use dash_sim;
pub use sparse;
pub use workloads;
