//! Offline shim for the `rand` API subset this workspace uses.
//!
//! The workload generators only need a seedable small RNG with
//! `gen_range`/`gen_bool`; this shim provides those signatures over a
//! splitmix64/xorshift* core. Streams are deterministic per seed and stable
//! across platforms, which is all the generators rely on (they never claim a
//! particular distribution beyond "uniform enough").

use std::ops::Range;

/// Splitmix64 step — used to diffuse seeds and as the basis of the stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core RNG trait (the subset of `rand::Rng` the workspace calls).
pub trait Rng {
    /// The next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

/// Seeding trait (the subset of `rand::SeedableRng` the workspace calls).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map 64 random bits to a double in [0, 1).
fn unit_f64(bits: u64) -> f64 {
    // 53-bit mantissa / 2^53, the standard open-interval construction.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Half-open ranges a generator can sample from.
pub trait SampleRange {
    type Output;
    fn sample<G: Rng>(self, rng: &mut G) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Small fast RNG: splitmix64-seeded xorshift64*.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Diffuse the seed so small seeds (0, 1, 2...) diverge instantly.
            let mut s = seed;
            let state = splitmix64(&mut s) | 1;
            SmallRng { state }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*; never zero because the seed is forced odd.
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits {hits}");
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn small_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
