//! Offline shim for the `criterion` API subset this workspace uses.
//!
//! The build container has no crates.io access, so benches link against this
//! stand-in: same macro/type surface (`criterion_group!`, `criterion_main!`,
//! `Criterion`, benchmark groups, `Bencher::iter`), but measurement is a
//! simple warm-up plus a fixed batch of timed iterations printed as a
//! mean — no statistical analysis, outlier detection, or HTML reports.
//! Good enough to keep `cargo bench` compiling and producing indicative
//! numbers; absolute results are not comparable to real criterion runs.

use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: usize,
    result: Option<(Duration, usize)>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call so lazy initialisation stays out of the
        // measurement.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.result = Some((start.elapsed(), self.samples));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((total, n)) if n > 0 => {
            let mean = total / n as u32;
            println!("{id:<50} {mean:>12.2?}/iter  ({n} iters in {total:.2?})");
        }
        _ => println!("{id:<50} (no measurement)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // warm-up + sample_size timed iterations
        assert_eq!(calls, 21);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("x", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
            g.finish();
        }
        assert_eq!(calls, 6);
    }
}
