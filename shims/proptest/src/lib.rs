//! Offline shim for the `proptest` API subset this workspace uses.
//!
//! Provides the `proptest!` macro, range/tuple/option/vec strategies,
//! `prop_map`, `prop_oneof!`, `Just`, `any::<T>()` and the `prop_assert*`
//! macros, generating cases from a deterministic per-test RNG. Differences
//! from real proptest: no shrinking (a failing case reports its case number
//! and panics with the assertion message), and no persistence of regressions
//! (`*.proptest-regressions` files are ignored). Case counts honour
//! `ProptestConfig::with_cases`.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert*` / `TestCaseError::fail` inside a case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test RNG (seeded from the test name, xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test's name so every test draws an independent,
    /// reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xC001_D00D_5EED_0001u64;
        for b in name.bytes() {
            state = (state ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: state | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Owned trait object form used by `prop_oneof!`.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// `any::<T>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind `any::<T>()` for primitive types.
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_prim {
    ($($t:ty => $gen:expr),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_prim!(
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize
);

/// The `prop::` namespace mirrored from real proptest.
pub mod prop {
    pub mod option {
        use crate::{Strategy, TestRng};

        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 3 == 0 {
                    // 25% None, matching real proptest's bias toward Some.
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }

        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Length spec for `vec`: a half-open range or an exact size.
        pub struct SizeRange(Range<usize>);

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange(r)
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange(n..n + 1)
            }
        }

        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let n = self.size.start + (rng.next_u64() % span) as usize;
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into().0,
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            // No rejection bookkeeping: an assumed-away case simply passes.
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The test-defining macro. Each `#[test] fn name(pat in strategy, ...)`
/// becomes a plain `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let case_desc = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)* "{}"),
                    $(&$arg,)* ""
                );
                let run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let Err(e) = run() {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:{}",
                        case + 1, config.cases, e, case_desc
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds, vec sizes honoured, option mixes in Nones.
        #[test]
        fn strategies_in_bounds(
            x in 3u64..17,
            v in prop::collection::vec(0u8..4, 2..6),
            o in prop::option::of(0usize..10),
            b in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 4));
            if let Some(i) = o {
                prop_assert!(i < 10);
            }
            let _ = b;
        }

        /// prop_map and prop_oneof compose.
        #[test]
        fn map_and_oneof(
            y in prop_oneof![
                (0u8..4).prop_map(|v| v as u32),
                Just(99u32),
            ],
        ) {
            prop_assert!(y < 4 || y == 99);
        }

        /// prop_assume short-circuits a case.
        #[test]
        fn assume_works(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a <= b);
            prop_assert!(b - a < 10);
        }
    }

    // No #[test] attribute on the inner fn: a nested `#[test]` would be
    // unnameable to the harness (and rustc rejects it under -D warnings).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        fn always_fails(x in 0u8..4) {
            prop_assert!(x > 200, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_inputs() {
        always_fails();
    }
}
