//! Offline shim for the `parking_lot` API subset this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! std-backed stand-in: same names and signatures (`lock()` without a
//! `Result`, `Condvar::wait*` taking the guard by `&mut`), implemented on
//! `std::sync`. Poisoning is deliberately swallowed — a panicking task must
//! not wedge unrelated lock users, which matches `parking_lot` semantics and
//! the runtime's panic-isolation design.

use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// Mutex with `parking_lot`'s panic-free `lock()` signature.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]. Wraps the std guard in an `Option` so
/// the condvar wait methods can temporarily take ownership through `&mut`.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + std::fmt::Display> std::fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&**self, f)
    }
}

/// Result of a timed condvar wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condvar whose wait methods take the `MutexGuard` by `&mut`, as
/// `parking_lot`'s do.
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard already taken");
        guard.0 = Some(self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard already taken");
        let (g, res) = match self.0.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free signatures.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        assert!(!*g);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
