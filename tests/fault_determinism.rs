//! Chaos under a seeded [`FaultPlan`], across every case study: a slowed
//! server, a mid-run stall, transient task failures and delayed wakeups
//! must (a) leave the computed results correct, (b) cost virtual time, and
//! (c) stay bit-for-bit deterministic — two runs with the same plan produce
//! identical reports, which is what makes an injected failure debuggable.

use cool_repro::apps::{self, Version};
use cool_repro::cool_sim::{FaultPlan, MachineConfig, SimConfig};

fn cfg(nprocs: usize, v: Version) -> SimConfig {
    SimConfig::new(MachineConfig::dash_small(nprocs)).with_policy(v.policy())
}

/// The standard chaos mix: processor 1 is a straggler, processor 0 freezes
/// for a while at its 3rd dispatch, four tasks among the first `upto`
/// spawned fail transiently, and processor 2 is slow to notice new work.
/// (`upto` must not exceed the app's spawn count, or some victims never
/// exist and the injected-fault count comes up short.)
fn plan(seed: u64, upto: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .slow_server(1, 400)
        .stall_server(0, 3, 20_000)
        .fail_random_tasks(4, upto)
        .delay_wakeups(2, 150)
}

fn fingerprint(rep: &apps::AppReport) -> String {
    format!(
        "{}|{:?}|{:?}|{}",
        rep.run.elapsed, rep.run.stats, rep.run.mem, rep.max_error
    )
}

/// Shared assertions: same-plan determinism, unchanged work accounting,
/// injected faults visible in stats, slower than the clean run, and a
/// correct result.
fn check(
    name: &str,
    clean: &apps::AppReport,
    faulted: impl Fn() -> apps::AppReport,
    max_error: f64,
) {
    let a = faulted();
    let b = faulted();
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "{name}: same fault plan, different outcome"
    );
    assert!(
        a.max_error < max_error,
        "{name}: result diverged under faults: {}",
        a.max_error
    );
    assert_eq!(
        a.run.stats.executed, clean.run.stats.executed,
        "{name}: injected faults must not change how much work runs"
    );
    assert_eq!(
        a.run.stats.injected_faults, 4,
        "{name}: all four transient failures fire"
    );
    assert_eq!(clean.run.stats.injected_faults, 0);
    assert!(
        a.run.elapsed > clean.run.elapsed,
        "{name}: a straggler and a stall must cost virtual time \
         (clean {}, faulted {})",
        clean.run.elapsed,
        a.run.elapsed
    );
}

#[test]
fn ocean_under_faults() {
    let p = cool_repro::workloads::ocean::OceanParams {
        n: 24,
        num_grids: 4,
        regions: 8,
        sweeps: 2,
        seed: 3,
    };
    let v = Version::AffinityDistr;
    let clean = apps::ocean::run(cfg(6, v), &p, v);
    check(
        "ocean",
        &clean,
        || apps::ocean::run_with_faults(cfg(6, v), &p, v, Some(plan(21, 40))),
        1e-12,
    );
}

#[test]
fn locusroute_under_faults() {
    let p = apps::locusroute::LocusParams {
        circuit: cool_repro::workloads::circuit::Circuit::generate(
            cool_repro::workloads::circuit::CircuitParams {
                width: 64,
                height: 16,
                regions: 4,
                wires_per_region: 16,
                crossing_fraction: 0.2,
                multi_pin_fraction: 0.3,
                seed: 11,
            },
        ),
        iterations: 2,
    };
    let v = Version::Affinity;
    let clean = apps::locusroute::run(cfg(6, v), &p, v);
    check(
        "locusroute",
        &clean,
        || apps::locusroute::run_with_faults(cfg(6, v), &p, v, Some(plan(22, 40))),
        1e-9,
    );
}

#[test]
fn panel_cholesky_under_faults() {
    let prob = apps::panel_cholesky::PanelProblem::analyse(&apps::panel_cholesky::PanelParams {
        matrix: cool_repro::workloads::matrices::grid_laplacian(8),
        max_panel_width: 4,
    });
    let v = Version::AffinityDistrCluster;
    let clean = apps::panel_cholesky::run(cfg(6, v), &prob, v);
    check(
        "panel_cholesky",
        &clean,
        || apps::panel_cholesky::run_with_faults(cfg(6, v), &prob, v, Some(plan(23, 40))),
        1e-9,
    );
}

#[test]
fn block_cholesky_under_faults() {
    let p = apps::block_cholesky::BlockParams { n: 32, block: 8 };
    let v = Version::AffinityDistr;
    let clean = apps::block_cholesky::run(cfg(6, v), &p, v);
    check(
        "block_cholesky",
        &clean,
        || apps::block_cholesky::run_with_faults(cfg(6, v), &p, v, Some(plan(24, 10))),
        1e-8,
    );
}

#[test]
fn barnes_hut_under_faults() {
    let p = apps::barnes_hut::BhParams {
        nbodies: 96,
        groups: 12,
        timesteps: 2,
        theta: 0.6,
        dt: 0.01,
        seed: 4,
    };
    let v = Version::Affinity;
    let clean = apps::barnes_hut::run(cfg(6, v), &p, v);
    check(
        "barnes_hut",
        &clean,
        || apps::barnes_hut::run_with_faults(cfg(6, v), &p, v, Some(plan(25, 40))),
        1e-12,
    );
}

#[test]
fn gauss_under_faults() {
    let p = apps::gauss::GaussParams { n: 24, seed: 7 };
    let v = Version::AffinityDistr;
    let clean = apps::gauss::run(cfg(6, v), &p, v);
    check(
        "gauss",
        &clean,
        || apps::gauss::run_with_faults(cfg(6, v), &p, v, Some(plan(26, 40))),
        1e-9,
    );
}

#[test]
fn different_fault_seeds_pick_different_victims() {
    // fail_random_tasks is seed-driven; two different seeds should fail a
    // different set of spawn indices for at least one of these plans, which
    // shows up as a different schedule fingerprint.
    let p = apps::gauss::GaussParams { n: 24, seed: 7 };
    let v = Version::AffinityDistr;
    let run = |s: u64| {
        fingerprint(&apps::gauss::run_with_faults(
            cfg(6, v),
            &p,
            v,
            Some(FaultPlan::new(s).fail_random_tasks(4, 40)),
        ))
    };
    assert!(
        (1..=8u64).any(|s| run(s) != run(100 + s)),
        "eight seed pairs all produced identical schedules"
    );
}

#[test]
fn threaded_panel_cholesky_under_faults_still_verifies() {
    // The real threaded runtime under the same kind of plan (units are µs
    // here): a straggler worker plus transient failures must not change the
    // factorization. Wall-clock determinism is not expected on threads —
    // only correctness and complete accounting.
    let a = cool_repro::workloads::matrices::grid_laplacian(10);
    let plan = FaultPlan::new(5)
        .slow_server(0, 300)
        .fail_random_tasks(3, 30)
        .delay_wakeups(1, 100);
    let res =
        apps::threaded::panel_cholesky_rt_with_faults(&a, 4, 4, Some(plan)).expect("no panics");
    assert!(res.max_error < 1e-9, "error {}", res.max_error);
    assert_eq!(res.stats.injected_faults, 3);
    assert_eq!(res.stats.spawned, res.stats.executed);
}
