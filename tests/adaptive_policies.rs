//! Behavioural guarantees of the adaptive policy layer (ISSUE 10):
//!
//! 1. the phase-boundary rebalancer recovers a deliberately bad static
//!    placement — speedup strictly improves;
//! 2. adaptive ladder versions with adaptation disabled (or configured
//!    to be inert) are cycle-identical to their static parents — the
//!    feedback instrumentation itself never perturbs the schedule;
//! 3. the `adapt=`/`rebal=` fingerprint segments key their own memo slots,
//!    so a static record can never satisfy an adaptive point (and vice
//!    versa);
//! 4. the committed `results/adaptive/` table really contains the
//!    dominance the PR claims: `Affinity+Distr+Rebalance` ≥ its static
//!    parent at every processor count on the ocean deep table, strictly
//!    better somewhere.

use apps::Version;
use bench::repro::{self, MatrixPoint, MemoCache};
use bench::Scale;
use cool_core::{AdaptiveConfig, AffinitySpec, RebalanceConfig, StealPolicy};
use cool_sim::{MachineConfig, SimConfig, SimRuntime, Task};

/// All data homed on cluster 0, all work pinned to cluster 1: the worst
/// static placement the paper's object-distribution primitives can produce.
/// Several read-heavy phases over the same arrays give the rebalancer both
/// the traffic evidence and the phase boundaries it needs. Stealing is off —
/// with it on, idle cluster-0 servers would drag the "pinned" tasks back to
/// the data and the placement would not stay bad.
fn badly_placed_run(rebalance: Option<RebalanceConfig>) -> (u64, u64) {
    let mut cfg =
        SimConfig::new(MachineConfig::dash_small(8)).with_policy(StealPolicy::disabled());
    if let Some(rb) = rebalance {
        cfg = cfg.with_rebalance(rb);
    }
    let mut rt = SimRuntime::new(cfg);
    // 64 KiB of data, all on processor 0 (cluster 0) — four times the
    // 16 KiB L2, so every phase misses all the way to memory and the
    // home-cluster distance is paid again and again.
    let objs: Vec<_> = (0..8)
        .map(|_| rt.machine_mut().alloc_on_proc(0, 8192))
        .collect();
    for _phase in 0..6 {
        let objs = objs.clone();
        rt.run_phase(move |ctx| {
            // Every task runs on cluster 1 (processors 4..8) and scans all
            // eight arrays.
            for p in 4..8 {
                let objs = objs.clone();
                ctx.spawn(
                    Task::new(move |c| {
                        for &obj in &objs {
                            c.read(obj, 8192);
                        }
                        c.compute(500);
                    })
                    .with_affinity(AffinitySpec::processor(p)),
                );
            }
        });
    }
    (rt.elapsed(), rt.stats().rebalanced_pages)
}

#[test]
fn rebalancer_recovers_bad_placement() {
    let (static_elapsed, static_moves) = badly_placed_run(None);
    assert_eq!(static_moves, 0);
    let (rebal_elapsed, rebal_moves) = badly_placed_run(Some(RebalanceConfig {
        min_remote: 8,
        margin_permille: 1000,
    }));
    assert!(rebal_moves > 0, "rebalancer never fired");
    assert!(
        rebal_elapsed < static_elapsed,
        "rebalanced run must be strictly faster: {rebal_elapsed} vs {static_elapsed}"
    );
}

#[test]
fn rebalancer_is_deterministic() {
    let rb = RebalanceConfig {
        min_remote: 8,
        margin_permille: 1000,
    };
    assert_eq!(badly_placed_run(Some(rb)), badly_placed_run(Some(rb)));
}

/// An AdaptiveConfig whose thresholds can never fire: the fail rate cannot
/// exceed 1000‰, the probe cap is disabled, and the migration throttle is
/// off. Running with it exercises every observation path while the controls
/// stay at their static values.
fn inert_adaptive() -> AdaptiveConfig {
    AdaptiveConfig {
        window: 32,
        widen_fail_permille: 1001,
        migrate_remote_permille: 0,
        probe_base: 0,
        probe_per_depth: 0,
    }
}

fn run_deep(app: &str, v: Version, cfg: SimConfig) -> (u64, u64, u64) {
    let rep = apps::driver::run_app_scaled(app, cfg, Scale::Deep.app_scale(), v);
    assert!(rep.max_error < 1e-6, "{app} numerically wrong");
    (rep.run.elapsed, rep.run.mem.refs, rep.run.mem.remote_misses)
}

#[test]
fn inert_adaptation_is_cycle_identical_to_static_parent() {
    for app in ["gauss", "ocean"] {
        for nprocs in [8, 32] {
            // AdaptiveSteal's static parent is ClusterSteal: with the
            // feedback configured but inert, the schedule (and therefore
            // every cycle and miss count) must match exactly.
            let parent = run_deep(
                app,
                Version::AffinityDistrCluster,
                Scale::Deep.config(nprocs, Version::AffinityDistrCluster),
            );
            let inert = run_deep(
                app,
                Version::AffinityDistrAdaptive,
                Scale::Deep
                    .config(nprocs, Version::AffinityDistrCluster)
                    .with_adaptive(inert_adaptive()),
            );
            assert_eq!(parent, inert, "{app} at {nprocs}p diverged under inert feedback");

            // Rebalance's static parent is Affinity+Distr: with the page
            // traffic monitor on but the move threshold unreachable, the
            // run must again be cycle-identical.
            let parent = run_deep(
                app,
                Version::AffinityDistr,
                Scale::Deep.config(nprocs, Version::AffinityDistr),
            );
            let inert = run_deep(
                app,
                Version::AffinityDistrRebalance,
                Scale::Deep
                    .config(nprocs, Version::AffinityDistr)
                    .with_rebalance(RebalanceConfig {
                        min_remote: u32::MAX,
                        margin_permille: 3000,
                    }),
            );
            assert_eq!(parent, inert, "{app} at {nprocs}p diverged under inert rebalancer");
        }
    }
}

#[test]
fn adaptive_fingerprint_segments_key_their_own_memo_slots() {
    let parent = MatrixPoint {
        app: "gauss",
        version: Version::AffinityDistrCluster,
        nprocs: 8,
        scale: Scale::Deep,
    };
    let adaptive = MatrixPoint {
        version: Version::AffinityDistrAdaptive,
        ..parent
    };
    let rebalance = MatrixPoint {
        version: Version::AffinityDistrRebalance,
        ..parent
    };
    assert!(adaptive.config_string().contains("adapt=w"), "{}", adaptive.config_string());
    assert!(rebalance.config_string().contains("rebal=m"), "{}", rebalance.config_string());
    assert!(!parent.config_string().contains("adapt="));
    assert!(!parent.config_string().contains("rebal="));
    assert_ne!(parent.hash_hex(), adaptive.hash_hex());
    assert_ne!(parent.hash_hex(), rebalance.hash_hex());
    assert_ne!(adaptive.hash_hex(), rebalance.hash_hex());

    // A cache warmed with the static parent's record must miss for the
    // adaptive points, and an adaptive record must round-trip under its
    // own key.
    let dir = std::env::temp_dir().join(format!(
        "cool-adaptive-memo-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = MemoCache::open(&dir).expect("cache dir");
    cache.store(&parent.run()).expect("store parent");
    assert!(cache.lookup(&parent).is_some());
    assert!(cache.lookup(&adaptive).is_none(), "static record satisfied adaptive point");
    assert!(cache.lookup(&rebalance).is_none(), "static record satisfied rebalance point");
    cache.store(&adaptive.run()).expect("store adaptive");
    let hit = cache.lookup(&adaptive).expect("adaptive round-trip");
    assert!(hit.config.contains("adapt=w"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committed_adaptive_table_contains_the_claimed_dominance() {
    let text = std::fs::read_to_string("results/adaptive/records.json")
        .expect("committed results/adaptive/records.json");
    let records = repro::parse_records_doc(&text).expect("parseable golden");
    let speedup = |series: &str, nprocs: usize| {
        records
            .iter()
            .find(|r| r.app == "ocean" && r.series == series && r.nprocs == nprocs)
            .unwrap_or_else(|| panic!("missing ocean/{series}/{nprocs} record"))
            .speedup
    };
    let mut strictly_better = false;
    for nprocs in [1, 8, 32, 64] {
        let parent = speedup("Affinity+Distr", nprocs);
        let rebal = speedup("Affinity+Distr+Rebalance", nprocs);
        assert!(
            rebal >= parent,
            "Rebalance below parent at {nprocs}p: {rebal} vs {parent}"
        );
        if rebal > parent {
            strictly_better = true;
        }
    }
    assert!(strictly_better, "Rebalance never strictly beats its parent on ocean");
}
