//! Cross-backend agreement: the threaded runtime (`cool-rt`) and the
//! simulated runtime (`cool-sim`) run the *same* Panel Cholesky task
//! structure. Both must produce the same factor (up to fp rounding from
//! update order), and both runtimes' statistics must balance.

use cool_repro::apps::{panel_cholesky, threaded, Version};
use cool_repro::cool_sim::{MachineConfig, SimConfig};
use cool_repro::sparse::ordering::minimum_degree;
use cool_repro::workloads::matrices::{grid_laplacian, random_spd};

#[test]
fn simulated_and_threaded_factorizations_agree() {
    for matrix in [grid_laplacian(9), random_spd(100, 3, 17)] {
        let prob = panel_cholesky::PanelProblem::analyse(&panel_cholesky::PanelParams {
            matrix: matrix.clone(),
            max_panel_width: 4,
        });
        let sim = panel_cholesky::run(
            SimConfig::new(MachineConfig::dash_small(6)),
            &prob,
            Version::AffinityDistr,
        );
        assert!(sim.max_error < 1e-9, "sim diverged: {}", sim.max_error);

        let thr = threaded::panel_cholesky_rt(&matrix, 4, 6);
        assert!(thr.max_error < 1e-9, "threaded diverged: {}", thr.max_error);

        // Both verified against the same sequential reference, so they agree
        // with each other within 2× the individual tolerances.
        assert!(sim.max_error + thr.max_error < 2e-9);
    }
}

#[test]
fn ordering_preprocessing_composes_with_both_backends() {
    let a = grid_laplacian(8);
    let p = minimum_degree(&a);
    let pa = a.permute_sym(&p);

    let prob = panel_cholesky::PanelProblem::analyse(&panel_cholesky::PanelParams {
        matrix: pa.clone(),
        max_panel_width: 4,
    });
    let sim = panel_cholesky::run(
        SimConfig::new(MachineConfig::dash_small(4)),
        &prob,
        Version::AffinityDistrCluster,
    );
    assert!(sim.max_error < 1e-9);

    let thr = threaded::panel_cholesky_rt(&pa, 4, 4);
    assert!(thr.max_error < 1e-9);
}

#[test]
fn threaded_statistics_balance() {
    let a = grid_laplacian(10);
    let res = threaded::panel_cholesky_rt(&a, 4, 8);
    assert!(res.max_error < 1e-9);
    assert_eq!(res.stats.spawned, res.stats.executed);
    // The dataflow spawns one CompletePanel per panel reached via its last
    // update plus one per initially-ready panel, plus one UpdatePanel per
    // dependency edge — compare against the analysed DAG.
    let prob = panel_cholesky::PanelProblem::analyse(&panel_cholesky::PanelParams {
        matrix: a,
        max_panel_width: 4,
    });
    let expected = prob.panels.len() + prob.deps.total_updates();
    assert_eq!(res.stats.executed, expected as u64);
}
