//! N-level topology-tree regressions: pinned classic fingerprints (the
//! epoch-2 baselines must not move), the deep-tree fingerprint extension,
//! partial-last-cluster behaviour end to end (scheduler + contention-engine
//! resource binning on machines whose processor count does not fill the
//! last cluster or socket), and the per-level steal accounting.

use std::cell::RefCell;
use std::rc::Rc;

use cool_core::{AffinitySpec, ClusterId, ProcId, Topology};
use cool_sim::{MachineConfig, SimConfig, SimRuntime, Task};
use dash_sim::ContentionConfig;

/// Classic 2-level machines must fingerprint exactly as they did before the
/// topology-tree generalization — every epoch-2 memo key depends on it.
#[test]
fn classic_fingerprints_are_unchanged() {
    assert_eq!(
        MachineConfig::dash(32).fingerprint(),
        "p32x4 l1=65536/16/1 l2=262144/16/1 lat=1/14/30/130/20 pg=4096 \
         do=50 mig=2000 occ=3 ctn=off"
    );
    assert_eq!(
        MachineConfig::dash_small(8).fingerprint(),
        "p8x4 l1=4096/16/1 l2=16384/16/1 lat=1/14/30/130/20 pg=1024 \
         do=50 mig=2000 occ=3 ctn=off"
    );
}

/// The deep tree appends its own fingerprint segment — present exactly when
/// a tree is configured, so a forged deep record can never be served for a
/// classic point (or vice versa).
#[test]
fn deep_fingerprint_extends_the_classic_one() {
    let classic = MachineConfig::dash(32).fingerprint();
    assert!(!classic.contains("tree="), "{classic}");
    assert_eq!(
        MachineConfig::deep_small(64).fingerprint(),
        "p64x8 l1=4096/16/1 l2=16384/16/1 lat=1/14/30/130/20 pg=1024 \
         do=50 mig=2000 occ=3 ctn=off tree=2x8x32@1 rlat=100/180"
    );
}

/// Deep-machine distance helpers on a ragged 48-processor machine (one and
/// a half 32-processor sockets): resource indexing must bin every cluster
/// and socket domain without panicking or aliasing.
#[test]
fn ragged_socket_distance_and_net_indexing() {
    let m = MachineConfig::deep_small(48);
    // 6 clusters of 8, plus div_ceil(48, 32) = 2 socket-level links.
    assert_eq!(m.nclusters(), 6);
    assert_eq!(m.nnet(), 8);
    // Clusters 0-3 fill socket 0; clusters 4-5 are the ragged socket 1.
    assert_eq!(m.cluster_distance(ClusterId(4), ClusterId(4)), 0);
    assert_eq!(m.cluster_distance(ClusterId(4), ClusterId(5)), 1);
    assert_eq!(m.cluster_distance(ClusterId(0), ClusterId(5)), 2);
    assert_eq!(m.mem_latency(0), m.lat.local_mem);
    assert_eq!(m.mem_latency(1), 100);
    assert_eq!(m.mem_latency(2), 180);
    // Same-socket crossings take one hop (the home cluster link); the
    // cross-socket path adds the home-side socket link first.
    let mut buf = [0usize; cool_core::MAX_TOPO_LEVELS];
    assert_eq!(m.net_path(ClusterId(4), ClusterId(4), &mut buf), 0);
    assert_eq!(m.net_path(ClusterId(4), ClusterId(5), &mut buf), 1);
    assert_eq!(buf[0], 5);
    assert_eq!(m.net_path(ClusterId(0), ClusterId(5), &mut buf), 2);
    assert_eq!(buf[0], 6 + 1, "socket link of the ragged home socket");
    assert_eq!(buf[1], 5);
}

/// A hoard-on-one-server workload that forces stealing, with objects homed
/// in the (possibly partial) last cluster so its memory, directory and
/// network resources all get exercised.
fn run_hoarded(machine: MachineConfig) -> cool_sim::RunReport {
    let nprocs = machine.nprocs;
    let mut cfg = SimConfig::new(machine.with_contention(ContentionConfig::dash()));
    cfg.policy = cool_core::StealPolicy::default();
    let mut rt = SimRuntime::new(cfg);
    let objs: Vec<_> = (0..nprocs)
        .map(|i| rt.machine_mut().alloc_on_proc(i, 2048))
        .collect();
    let ran: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
    let r = ran.clone();
    rt.run_phase(move |ctx| {
        for round in 0..3 {
            for (i, &obj) in objs.iter().enumerate() {
                let _ = (round, i);
                let r1 = r.clone();
                ctx.spawn(
                    Task::new(move |c| {
                        c.read(obj, 1024);
                        c.compute(2_000);
                        r1.borrow_mut().push(c.proc().index());
                    })
                    .with_affinity(AffinitySpec::processor(0)),
                );
            }
        }
    });
    let report = rt.report();
    assert_eq!(ran.borrow().len(), 3 * nprocs, "lost tasks");
    assert_eq!(report.stats.executed, report.stats.spawned);
    report
}

/// 10 processors at 4 per cluster: the last cluster holds only 2. The
/// scheduler, the steal path and the contention engine must all handle the
/// partial cluster (this is the end-to-end pin for the per-cluster
/// resource-binning audit).
#[test]
fn partial_last_cluster_completes_under_contention() {
    let report = run_hoarded(MachineConfig::dash_small(10));
    assert!(report.stats.tasks_stolen > 0, "workload must force steals");
    // 2-level tree: in-cluster steals land in bucket 0, cross-cluster in
    // bucket 1, and the cross-cluster bucket is exactly `remote_steals`.
    assert_eq!(report.topology, Topology::clustered(10, 4));
    assert_eq!(report.stats.steals_by_level[1], report.stats.remote_steals);
    assert_eq!(report.stats.steals_by_level[2..], [0, 0, 0]);
    // A thief in the ragged cluster scans its 1 neighbour first.
    let order = report.topology.steal_order(ProcId(9));
    assert_eq!(order.len(), 9);
    assert_eq!(order[0], ProcId(8));
}

/// The same end-to-end pin on a deep tree with a ragged socket: 48
/// processors on the 2x8x32 machine (socket 1 holds half its clusters).
#[test]
fn ragged_deep_socket_completes_under_contention() {
    let report = run_hoarded(MachineConfig::deep_small(48));
    assert!(report.stats.tasks_stolen > 0, "workload must force steals");
    assert_eq!(report.topology, Topology::tree(48, &[2, 8, 32], 1));
    // mem_level is 1: levels 2 and beyond are cross-cluster.
    let remote: u64 = report.stats.steals_by_level[2..].iter().sum();
    assert_eq!(remote, report.stats.remote_steals);
    let total: u64 = report.stats.steals_by_level.iter().sum();
    assert!(total > 0);
}

/// Steal-policy ceilings on the deep tree: `cluster_only` never leaves the
/// memory level even when desperate, a radius of 1 admits the socket but
/// not the far socket, and widening starts at the SMT pair.
#[test]
fn deep_policy_ceilings() {
    let topo = Topology::tree(64, &[2, 8, 32], 1);
    let cluster = cool_core::StealPolicy::cluster_only();
    assert_eq!(cluster.allowed_level(&topo, 0), 1);
    assert_eq!(cluster.allowed_level(&topo, 100), 1, "desperation never lifts it");
    let socket = cool_core::StealPolicy::with_radius(1);
    assert_eq!(socket.allowed_level(&topo, 0), 2);
    let widen = cool_core::StealPolicy::widening();
    assert_eq!(widen.allowed_level(&topo, 0), 0);
    assert_eq!(widen.allowed_level(&topo, 2), 2);
    assert_eq!(
        cool_core::StealPolicy::default().allowed_level(&topo, 0),
        usize::MAX
    );
}
