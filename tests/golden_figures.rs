//! Golden-run regression test: the gate that proves hot-path work in
//! `dash-sim` changes zero simulated cycles.
//!
//! Re-runs the pinned reduced-scale sweep (all six apps, the Base and
//! Affinity+Distr versions, 4 and 32 processors — see `bench::perf`) and
//! asserts the full performance-monitor breakdown — reference counts, hit
//! levels, local/remote misses, invalidations, busy/idle/overhead
//! virtual cycles, and contention queue-wait cycles — byte-for-byte
//! against the committed `tests/golden_figures.tsv`.
//!
//! If simulated behaviour changes *intentionally* (a new scheduling policy,
//! a latency-table change), regenerate with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --release --test golden_figures
//! ```
//!
//! and review the TSV diff like any other code change. A diff you did not
//! expect means the change was not performance-neutral.

use bench::perf;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_figures.tsv")
}

#[test]
fn pinned_sweep_matches_committed_golden_tsv() {
    let got = perf::golden_tsv(&perf::run_sweep());
    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &got).expect("write golden TSV");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing committed golden TSV at {} ({e}); \
             regenerate with GOLDEN_REGEN=1 cargo test --test golden_figures",
            path.display()
        )
    });
    if got != want {
        // Byte-level equality is the contract; print a row-level diff first
        // so the failure is debuggable without external tools.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                eprintln!("line {}: got  {g}", i + 1);
                eprintln!("line {}: want {w}", i + 1);
            }
        }
        panic!(
            "pinned sweep diverged from committed golden TSV — simulated cycles \
             changed; if intentional, regenerate with GOLDEN_REGEN=1 and review the diff"
        );
    }
}

#[test]
fn golden_tsv_is_well_formed() {
    let want = match std::fs::read_to_string(golden_path()) {
        Ok(s) => s,
        // The regen path creates it; the main test reports the miss.
        Err(_) => return,
    };
    let mut lines = want.lines();
    assert_eq!(lines.next(), Some(perf::GOLDEN_HEADER));
    let rows: Vec<&str> = lines.collect();
    // 6 apps x 2 versions x 2 processor counts.
    assert_eq!(rows.len(), 24, "expected 24 sweep rows");
    for row in rows {
        assert_eq!(row.split('\t').count(), 15, "malformed row: {row}");
    }
}
