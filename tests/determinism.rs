//! Bit-level determinism of every case study: the same configuration always
//! produces the same virtual time, the same miss breakdown and the same
//! scheduler statistics — the property that makes the committed `results/`
//! artifacts reproducible and regressions diffable.

use cool_repro::apps::{self, Version};
use cool_repro::cool_sim::{MachineConfig, SimConfig};

fn cfg(nprocs: usize, v: Version) -> SimConfig {
    SimConfig::new(MachineConfig::dash_small(nprocs)).with_policy(v.policy())
}

fn fingerprint(rep: &apps::AppReport) -> String {
    format!(
        "{}|{:?}|{:?}|{}",
        rep.run.elapsed, rep.run.stats, rep.run.mem, rep.max_error
    )
}

#[test]
fn ocean_is_deterministic() {
    let p = cool_repro::workloads::ocean::OceanParams {
        n: 24,
        num_grids: 4,
        regions: 8,
        sweeps: 2,
        seed: 3,
    };
    let run = || fingerprint(&apps::ocean::run(cfg(6, Version::AffinityDistr), &p, Version::AffinityDistr));
    assert_eq!(run(), run());
}

#[test]
fn locusroute_is_deterministic() {
    let p = apps::locusroute::LocusParams {
        circuit: cool_repro::workloads::circuit::Circuit::generate(
            cool_repro::workloads::circuit::CircuitParams {
                width: 64,
                height: 16,
                regions: 4,
                wires_per_region: 16,
                crossing_fraction: 0.2,
                multi_pin_fraction: 0.3,
                seed: 11,
            },
        ),
        iterations: 2,
    };
    let run = || fingerprint(&apps::locusroute::run(cfg(6, Version::Affinity), &p, Version::Affinity));
    assert_eq!(run(), run());
}

#[test]
fn panel_cholesky_is_deterministic() {
    let prob = apps::panel_cholesky::PanelProblem::analyse(&apps::panel_cholesky::PanelParams {
        matrix: cool_repro::workloads::matrices::grid_laplacian(8),
        max_panel_width: 4,
    });
    let run = || {
        fingerprint(&apps::panel_cholesky::run(
            cfg(6, Version::AffinityDistrCluster),
            &prob,
            Version::AffinityDistrCluster,
        ))
    };
    assert_eq!(run(), run());
}

#[test]
fn block_cholesky_is_deterministic() {
    let p = apps::block_cholesky::BlockParams { n: 32, block: 8 };
    let run = || fingerprint(&apps::block_cholesky::run(cfg(6, Version::AffinityDistr), &p, Version::AffinityDistr));
    assert_eq!(run(), run());
}

#[test]
fn barnes_hut_is_deterministic() {
    let p = apps::barnes_hut::BhParams {
        nbodies: 96,
        groups: 12,
        timesteps: 2,
        theta: 0.6,
        dt: 0.01,
        seed: 4,
    };
    let run = || fingerprint(&apps::barnes_hut::run(cfg(6, Version::Base), &p, Version::Base));
    assert_eq!(run(), run());
}

#[test]
fn gauss_is_deterministic() {
    let p = apps::gauss::GaussParams { n: 24, seed: 7 };
    let run = || fingerprint(&apps::gauss::run(cfg(6, Version::AffinityDistr), &p, Version::AffinityDistr));
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_change_the_fingerprint() {
    // Sanity check that the fingerprint is sensitive at all. (Barnes-Hut's
    // access pattern is data-dependent: different bodies → different tree →
    // different visit counts. Gauss would not do: its mirrored traffic
    // depends only on the matrix dimension.)
    let mk = |seed| apps::barnes_hut::BhParams {
        nbodies: 64,
        groups: 8,
        timesteps: 1,
        theta: 0.6,
        dt: 0.01,
        seed,
    };
    let a = fingerprint(&apps::barnes_hut::run(cfg(4, Version::Base), &mk(1), Version::Base));
    let b = fingerprint(&apps::barnes_hut::run(cfg(4, Version::Base), &mk(2), Version::Base));
    assert_ne!(a, b);
}
