//! Chaos-under-load contracts for the `cool-serve` work server: the
//! acceptance gates of the service layer.
//!
//! * a fixed-seed faulted LocusRoute replay must shed and retry — and still
//!   lose nothing, double-run nothing, and conserve route occupancy;
//! * injected service faults are keyed by request id / shard domain, so the
//!   victim set is identical under any submission interleaving;
//! * drain-under-load (randomised over arrival schedules, queue capacities,
//!   drain points, and fault seeds): every admitted request reaches a
//!   terminal outcome, every post-drain submission is refused with the typed
//!   error, and no idempotency key's body ever succeeds twice.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bench::serve::{run_load, smoke_config, validate_serve_json};
use cool_repro::cool_core::FaultPlan;
use cool_repro::cool_rt::serve::Outcome;
use cool_repro::cool_rt::{Request, ServeConfig, SubmitError, WorkServer};
use proptest::prelude::*;

/// The CI acceptance run: pinned smoke profile, chaos armed. Overload must
/// shed, injected failures must retry, and the books must still balance —
/// with the report in canonical `cool-serve-v1` byte form.
#[test]
fn fixed_seed_chaos_replay_sheds_retries_and_loses_nothing() {
    let cfg = smoke_config(42, true);
    let (report, _obs) = run_load(&cfg);
    report.validate().unwrap_or_else(|e| panic!("invariants: {e}"));
    assert!(report.completed > 0, "nothing completed: {report:?}");
    assert!(report.shed > 0, "overload never shed: {report:?}");
    assert!(report.retries > 0, "faults never retried: {report:?}");
    assert!(report.injected_failures > 0, "chaos never fired: {report:?}");
    assert!(report.intake_stalls >= 1, "intake stall never fired");
    assert_eq!(report.lost, 0);
    assert_eq!(report.double_executed, 0);
    assert_eq!(report.conservation, "ok");
    // The document round-trips byte-identically (the schema contract).
    validate_serve_json(&report.to_json()).unwrap();
}

/// Run `n` trivial requests through a fresh server under `plan`, submitting
/// in the order given by `order`, and return (victim ids that consumed an
/// injected failure, per-request completed attempts, injected count).
fn run_order(n: u64, order: &[u64], plan: &FaultPlan) -> (BTreeSet<u64>, Vec<u32>, u64) {
    let cfg = ServeConfig::new(2, 1)
        .with_capacity(n as usize * 2) // ample: nothing sheds, all admitted
        .with_retry(3, Duration::from_micros(50), Duration::from_millis(1));
    let srv = WorkServer::with_faults(cfg, plan.clone());
    for &id in order {
        srv.submit(Request::new(id, id % 2, 1, |_| Ok(())))
            .unwrap_or_else(|e| panic!("request {id} refused: {e}"));
    }
    srv.drain();
    let outcomes = srv.outcomes();
    assert_eq!(outcomes.len() as u64, n);
    let mut victims = BTreeSet::new();
    let mut attempts = vec![0u32; n as usize];
    for (id, rec) in &outcomes {
        match rec.outcome {
            Some(Outcome::Completed { attempts: a, .. }) => {
                attempts[*id as usize] = a;
                if a > 1 {
                    victims.insert(*id);
                }
            }
            ref other => panic!("request {id} not completed: {other:?}"),
        }
    }
    (victims, attempts, srv.stats().injected_failures)
}

/// Satellite contract: fault injection keys on request identity, never on
/// arrival order — forward and scrambled submission see the same victims.
#[test]
fn injected_service_faults_ignore_arrival_interleaving() {
    let n: u64 = 32;
    let plan = FaultPlan::new(7)
        .fail_request(2)
        .fail_request(5)
        .fail_request(11)
        .fail_random_requests(3, n)
        .slow_domain(1, 50);
    let expected: BTreeSet<u64> = (0..n).filter(|&id| plan.should_fail_request(id)).collect();
    assert!(expected.len() >= 3, "plan must name victims: {expected:?}");

    let forward: Vec<u64> = (0..n).collect();
    // A stride-7 permutation of 0..32 (gcd(7, 32) = 1, so it visits all).
    let scrambled: Vec<u64> = (0..n).map(|i| (i * 7) % n).collect();
    let (v1, a1, inj1) = run_order(n, &forward, &plan);
    let (v2, a2, inj2) = run_order(n, &scrambled, &plan);

    assert_eq!(v1, expected, "forward order hit the wrong victims");
    assert_eq!(v2, expected, "scrambled order hit the wrong victims");
    assert_eq!(a1, a2, "per-request attempt counts depend on interleaving");
    assert_eq!(inj1, expected.len() as u64);
    assert_eq!(inj2, inj1);
}

/// Dedup edge cases: a duplicate of an idempotency key must be refused —
/// and the original outcome preserved, its body never re-executed — both
/// while the original is *mid-retry* (failed once, sitting in backoff) and
/// after it has already completed.
#[test]
fn duplicate_mid_retry_and_after_completion_never_reexecutes() {
    let cfg = ServeConfig::new(1, 1)
        .with_capacity(8)
        // A long fixed backoff opens a wide mid-retry window between the
        // first (failing) attempt and the retry.
        .with_retry(2, Duration::from_millis(300), Duration::from_millis(300));
    let srv = WorkServer::new(cfg);
    let runs: Arc<Vec<AtomicU32>> = Arc::new((0..2).map(|_| AtomicU32::new(0)).collect());
    let body = |id: u64, fail_first: bool| {
        let runs = runs.clone();
        move |attempt: u32| {
            runs[id as usize].fetch_add(1, Ordering::SeqCst);
            if fail_first && attempt == 0 {
                Err("transient".to_string())
            } else {
                Ok(())
            }
        }
    };
    let spin_until = |cond: &dyn Fn() -> bool, what: &str| {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(std::time::Instant::now() < deadline, "timed out: {what}");
            std::thread::sleep(Duration::from_micros(200));
        }
    };

    // Request 0 fails its first attempt and retries after the backoff.
    srv.submit(Request::new(0, 0, 1, body(0, true))).unwrap();
    spin_until(&|| runs[0].load(Ordering::SeqCst) == 1, "first attempt of 0");
    // Mid-retry: attempt 1 failed, the retry is waiting out its backoff.
    match srv.submit(Request::new(0, 0, 1, body(0, false))) {
        Err(SubmitError::Duplicate(id)) => assert_eq!(id, 0),
        other => panic!("mid-retry duplicate not refused: {other:?}"),
    }

    // Request 1 completes first try; resubmit after its outcome lands.
    srv.submit(Request::new(1, 0, 1, body(1, false))).unwrap();
    spin_until(
        &|| matches!(srv.outcomes().get(&1).and_then(|r| r.outcome.clone()),
            Some(Outcome::Completed { .. })),
        "completion of 1",
    );
    match srv.submit(Request::new(1, 0, 1, body(1, false))) {
        Err(SubmitError::Duplicate(id)) => assert_eq!(id, 1),
        other => panic!("post-completion duplicate not refused: {other:?}"),
    }

    srv.drain();
    let outcomes = srv.outcomes();
    // Original outcomes stand: 0 completed on its retry, 1 on its first
    // attempt — and the duplicates added zero body executions.
    match &outcomes[&0].outcome {
        Some(Outcome::Completed { attempts: 2, .. }) => {}
        other => panic!("request 0 outcome clobbered: {other:?}"),
    }
    match &outcomes[&1].outcome {
        Some(Outcome::Completed { attempts: 1, .. }) => {}
        other => panic!("request 1 outcome clobbered: {other:?}"),
    }
    assert_eq!(runs[0].load(Ordering::SeqCst), 2, "duplicate re-ran request 0");
    assert_eq!(runs[1].load(Ordering::SeqCst), 1, "duplicate re-ran request 1");
    assert_eq!(srv.stats().duplicates, 2);
    assert_eq!(srv.stats().admitted, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Drain under randomized load: whatever the arrival schedule, queue
    /// capacity, fault seed, and drain point, (a) every admitted request is
    /// terminal after `drain`, (b) every submission after `drain` is refused
    /// with [`SubmitError::Draining`], (c) a duplicate of an admitted id is
    /// refused and its body never succeeds twice, and (d) bodies run only
    /// for admitted ids.
    #[test]
    fn drain_under_load_never_loses_or_double_runs(
        seed in 0u64..1_000,
        nreq in 8u64..40,
        cap in 1usize..6,
        drain_frac in 0u64..100,
        shards in prop::collection::vec(0u64..8, 40),
    ) {
        let plan = FaultPlan::new(seed).fail_random_requests(2, nreq);
        let cfg = ServeConfig::new(2, 1)
            .with_capacity(cap)
            .with_retry(3, Duration::from_micros(50), Duration::from_micros(500));
        let srv = WorkServer::with_faults(cfg, plan);
        let runs: Arc<Vec<AtomicU32>> =
            Arc::new((0..nreq).map(|_| AtomicU32::new(0)).collect());
        let body = |id: u64| {
            let runs = runs.clone();
            move |_attempt: u32| {
                runs[id as usize].fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        };

        let drain_at = nreq * drain_frac / 100;
        let mut admitted = BTreeSet::new();
        for id in 0..drain_at {
            if srv.submit(Request::new(id, shards[id as usize], 1, body(id))).is_ok() {
                admitted.insert(id);
            }
        }
        // Duplicate of an already-admitted id must be refused by key and
        // must not enqueue another body run.
        if let Some(&dup) = admitted.iter().next() {
            match srv.submit(Request::new(dup, 0, 1, body(dup))) {
                Err(SubmitError::Duplicate(id)) => prop_assert_eq!(id, dup),
                other => {
                    return Err(TestCaseError::fail(format!(
                        "duplicate of {dup} not refused: {other:?}"
                    )))
                }
            }
        }
        srv.drain();
        // Everything submitted after the drain gets the typed refusal.
        for id in drain_at..nreq {
            match srv.submit(Request::new(id, shards[id as usize], 1, body(id))) {
                Err(SubmitError::Draining) => {}
                other => {
                    return Err(TestCaseError::fail(format!(
                        "post-drain submit of {id} not refused: {other:?}"
                    )))
                }
            }
        }

        let outcomes = srv.outcomes();
        prop_assert_eq!(outcomes.len(), admitted.len());
        for (id, rec) in &outcomes {
            prop_assert!(admitted.contains(id), "phantom record for {}", id);
            prop_assert!(rec.outcome.is_some(), "request {} lost in drain", id);
            prop_assert!(
                rec.body_successes <= 1,
                "request {} succeeded {} times",
                id,
                rec.body_successes
            );
            prop_assert_eq!(runs[*id as usize].load(Ordering::SeqCst), rec.body_runs);
        }
        for id in 0..nreq {
            if !admitted.contains(&id) {
                prop_assert_eq!(
                    runs[id as usize].load(Ordering::SeqCst),
                    0,
                    "unadmitted request {} ran",
                    id
                );
            }
        }
        let st = srv.stats();
        prop_assert_eq!(st.admitted + st.shed + st.duplicates, st.submitted);
        prop_assert_eq!(st.admitted, admitted.len() as u64);
        prop_assert_eq!(
            st.completed + st.failed + st.timed_out,
            st.admitted,
            "outcome books do not balance: {:?}",
            st
        );
    }
}
