//! Contention behaviour of the committed reproduction tables.
//!
//! The paper's motivation for locality-aware scheduling is that DASH's
//! buses, mesh and directories are *shared*: references that miss locally
//! do not just pay latency, they queue. With the discrete-event engine
//! enabled (repro epoch 2), the committed `results/full/` records carry
//! per-point queue-wait totals, and this suite pins the qualitative facts
//! the figures now rest on:
//!
//! * Panel Cholesky's `Base` series — no object distribution, so every
//!   panel miss hammers the home cluster — accumulates strictly more wait
//!   cycles at every step up in processor count;
//! * at 24 processors, running Panel Cholesky with contention modelled is
//!   strictly slower than the zero-contention fast path on the identical
//!   workload (speedup degrades under contention);
//! * locality pays off *through* contention: the object-distributed Ocean
//!   series holds a far lower wait total than `Base` at 32 processors.
//!
//! The wait-monotonicity checks read the committed records, so they also
//! gate against a stale `results/full/` directory.

use bench::repro::parse_records_doc;
use bench::Scale;
use cool_repro::apps::{self, Version};
use cool_repro::cool_sim::SimConfig;

fn full_records() -> Vec<bench::repro::ReproRecord> {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results/full/records.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    parse_records_doc(&text).expect("committed records parse")
}

#[test]
fn panel_base_wait_cycles_strictly_increase_with_procs() {
    let recs = full_records();
    let mut series: Vec<(usize, u64)> = recs
        .iter()
        .filter(|r| r.app == "panel_cholesky" && r.series == "Base" && r.nprocs > 1)
        .map(|r| (r.nprocs, r.wait_cycles))
        .collect();
    series.sort();
    assert!(series.len() >= 4, "expected the 2–24 processor ladder: {series:?}");
    for pair in series.windows(2) {
        assert!(
            pair[1].1 > pair[0].1,
            "panel/Base wait cycles not strictly increasing: {series:?}"
        );
    }
}

#[test]
fn panel_speedup_at_24_procs_degrades_under_contention() {
    // Same workload, same machine, same policy — the only difference is
    // whether references queue on the shared resources. The contended run
    // must be strictly slower, i.e. its speedup over the (shared) serial
    // baseline strictly lower.
    let prob = apps::driver::panel_problem(Scale::Full.app_scale());
    let v = Version::Base;
    let contended = apps::panel_cholesky::run(Scale::Full.config(24, v), &prob, v);
    // `MachineConfig::dash` leaves `contention` at `None` — the fast path.
    let zero_cfg = SimConfig::new(cool_repro::cool_sim::MachineConfig::dash(24))
        .with_policy(v.policy());
    let zero = apps::panel_cholesky::run(zero_cfg, &prob, v);
    assert_eq!(
        zero.run.contention.total_wait(),
        0,
        "zero-contention run must report no waits"
    );
    assert!(contended.run.contention.total_wait() > 0);
    assert!(
        contended.run.elapsed > zero.run.elapsed,
        "contention must cost cycles at 24 processors: contended {} vs zero {}",
        contended.run.elapsed,
        zero.run.elapsed
    );
}

#[test]
fn distributed_ocean_waits_less_than_base_at_scale() {
    let recs = full_records();
    let wait = |series: &str| -> u64 {
        recs.iter()
            .find(|r| r.app == "ocean" && r.series == series && r.nprocs == 32)
            .unwrap_or_else(|| panic!("missing ocean/{series}@32"))
            .wait_cycles
    };
    let base = wait("Base");
    let distr = wait("Distr");
    assert!(
        distr * 2 < base,
        "object distribution should at least halve the wait total at 32 \
         processors: Base {base}, Distr {distr}"
    );
}

#[test]
fn committed_records_carry_the_contention_epoch() {
    let recs = full_records();
    for r in &recs {
        assert!(
            r.config.contains("epoch=2"),
            "record {}/{}@{} predates the contention epoch: {}",
            r.app,
            r.series,
            r.nprocs,
            r.config
        );
        assert!(
            r.config.contains("ctn=bus"),
            "full-scale records must run the contention engine: {}",
            r.config
        );
    }
}
