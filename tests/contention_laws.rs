//! Queueing-theory validation of the discrete-event contention engine.
//!
//! The engine's [`Resource`] is a deterministic-service FIFO server, so an
//! open-loop Poisson arrival stream through one resource is an M/D/1 queue
//! and its mean queue wait has a closed form:
//!
//! ```text
//!   Wq = rho * D / (2 * (1 - rho)),   rho = lambda * D
//! ```
//!
//! These tests drive synthetic Poisson streams straight into a `Resource`
//! (no machine, no scheduler) and assert:
//!
//! * the measured mean wait matches the M/D/1 closed form within tolerance
//!   at several offered loads;
//! * measured utilisation (busy cycles over the busy horizon) never
//!   exceeds 1.0;
//! * mean wait is strictly monotone in offered load under common random
//!   numbers (the same uniform stream scaled to each arrival rate);
//! * the engine is deterministic: identical streams produce identical
//!   statistics.
//!
//! Passing here is what justifies reading the contention counters in
//! `results/` as queueing behaviour rather than as arbitrary penalties.

use dash_sim::engine::{Hop, ResourceKind};
use dash_sim::{ContentionConfig, Engine, Resource};

/// Deterministic xorshift64* stream of uniforms in (0, 1).
struct Uniforms {
    x: u64,
}

impl Uniforms {
    fn new(seed: u64) -> Self {
        Uniforms {
            x: seed.max(1),
        }
    }

    fn next(&mut self) -> f64 {
        self.x ^= self.x << 13;
        self.x ^= self.x >> 7;
        self.x ^= self.x << 17;
        // 53 mantissa bits, offset so the value is strictly inside (0, 1).
        ((self.x >> 11) as f64 + 0.5) / 9007199254740992.0
    }
}

/// Drive `n` Poisson arrivals (rate `lambda` per cycle, from `seed`'s
/// uniform stream) through a fresh deterministic-service resource. Returns
/// `(mean wait, utilisation)` where utilisation is busy cycles over the
/// span from the first arrival to the last departure.
fn mdl_run(service: u64, lambda: f64, n: usize, seed: u64) -> (f64, f64) {
    let mut u = Uniforms::new(seed);
    let mut r = Resource::new(service);
    let mut t = 0.0f64;
    let mut last_departure = 0u64;
    for _ in 0..n {
        t += -u.next().ln() / lambda;
        let now = t as u64;
        let wait = r.acquire(now);
        last_departure = now + wait + service;
    }
    let s = r.stats();
    assert_eq!(s.requests, n as u64);
    let horizon = last_departure.max(1);
    (s.mean_wait(), s.busy_cycles as f64 / horizon as f64)
}

/// The M/D/1 mean-queue-wait closed form.
fn mdl_wq(service: u64, rho: f64) -> f64 {
    rho * service as f64 / (2.0 * (1.0 - rho))
}

#[test]
fn mean_wait_matches_md1_closed_form() {
    const SERVICE: u64 = 1000;
    const N: usize = 200_000;
    for (i, &rho) in [0.3, 0.5, 0.7].iter().enumerate() {
        let lambda = rho / SERVICE as f64;
        let (measured, util) = mdl_run(SERVICE, lambda, N, 0x5eed + i as u64);
        let predicted = mdl_wq(SERVICE, rho);
        let rel = (measured - predicted).abs() / predicted;
        assert!(
            rel < 0.10,
            "rho={rho}: measured mean wait {measured:.1}, M/D/1 predicts \
             {predicted:.1} ({:.1}% off, tolerance 10%)",
            rel * 100.0
        );
        assert!(
            util <= 1.0,
            "rho={rho}: utilisation {util:.4} exceeds 1.0"
        );
        // Sanity on the load itself: utilisation should be near rho.
        assert!(
            (util - rho).abs() < 0.05,
            "rho={rho}: utilisation {util:.4} far from offered load"
        );
    }
}

#[test]
fn utilization_saturates_at_one_under_overload() {
    // rho = 1.5: the queue grows without bound but the server can still
    // only be busy 100% of the time.
    const SERVICE: u64 = 100;
    let (_, util) = mdl_run(SERVICE, 1.5 / SERVICE as f64, 50_000, 7);
    assert!(util <= 1.0, "overloaded utilisation {util:.4} exceeds 1.0");
    assert!(util > 0.99, "overloaded server should be saturated: {util:.4}");
}

#[test]
fn mean_wait_is_monotone_in_offered_load() {
    // Common random numbers: each load replays the same uniform stream, so
    // sampling noise cancels and the comparison is load against load.
    const SERVICE: u64 = 1000;
    const N: usize = 50_000;
    let loads = [0.1, 0.2, 0.35, 0.5, 0.65, 0.8];
    let mut prev = -1.0f64;
    for &rho in &loads {
        let mut u = Uniforms::new(0xc0ffee);
        let mut r = Resource::new(SERVICE);
        let lambda = rho / SERVICE as f64;
        let mut t = 0.0f64;
        for _ in 0..N {
            t += -u.next().ln() / lambda;
            r.acquire(t as u64);
        }
        let mean = r.stats().mean_wait();
        assert!(
            mean > prev,
            "mean wait not monotone: rho={rho} gives {mean:.2} after {prev:.2}"
        );
        prev = mean;
    }
}

#[test]
fn engine_statistics_are_deterministic() {
    let run = || {
        let mut eng = Engine::new(ContentionConfig::dash(), 4);
        let mut u = Uniforms::new(42);
        let mut t = 0.0f64;
        for i in 0..10_000u64 {
            t += -u.next().ln() * 8.0;
            let now = t as u64;
            let home = (i % 4) as usize;
            let hops = [
                Hop { kind: ResourceKind::Bus, cluster: (i % 2) as usize },
                Hop { kind: ResourceKind::Net, cluster: home },
                Hop { kind: ResourceKind::Dir, cluster: home },
                Hop { kind: ResourceKind::Mem, cluster: home },
            ];
            if i % 5 == 0 {
                eng.post(now, &hops);
            } else {
                eng.transact(now, &hops);
            }
        }
        (eng.stats(), eng.events_processed(), eng.issued(), eng.completed())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical streams must produce identical statistics");
    assert!(a.0.total_wait() > 0, "the stream should have contended");
}
