//! Determinism and memoization guarantees of the `cool-repro` sweep
//! engine (`bench::repro`).
//!
//! The reproduction pipeline rests on three promises:
//!
//! 1. a matrix point is a pure function of its config — running it twice
//!    yields byte-identical records;
//! 2. the parallel work-stealing pool produces exactly the records the
//!    serial reference loop produces, in matrix order;
//! 3. the memo cache is keyed by the full config fingerprint — a second
//!    sweep hits, a mutated config misses.

use bench::repro::{
    self, records_doc, MatrixPoint, MemoCache, ReproRecord, SweepOptions,
};
use bench::Scale;
use apps::Version;

fn sample_points() -> Vec<MatrixPoint> {
    repro::build_matrix(
        &["gauss", "locusroute"],
        Some(&[Version::Base, Version::AffinityDistr]),
        Some(&[1, 4]),
        Scale::Small,
    )
}

#[test]
fn same_point_twice_is_byte_identical() {
    let point = MatrixPoint {
        app: "ocean",
        version: Version::AffinityDistr,
        nprocs: 4,
        scale: Scale::Small,
    };
    let a = point.run();
    let b = point.run();
    assert_eq!(a, b);
    assert_eq!(a.to_json(0), b.to_json(0));
}

#[test]
fn pool_matches_serial_reference() {
    let points = sample_points();
    let (serial, _) = repro::run_serial(&points);
    // Force multiple workers even on a single-CPU host so the steal path
    // and out-of-order completion actually get exercised.
    let outcome = repro::run_sweep(
        &points,
        &SweepOptions {
            jobs: 4,
            cache: None,
            progress: false,
        },
    );
    assert_eq!(outcome.records, serial);
    assert_eq!(
        records_doc("small", &outcome.records),
        records_doc("small", &serial)
    );
    // Every point produced a begin/end pair in the sweep's own trace.
    let begins = outcome
        .trace
        .events
        .iter()
        .filter(|e| matches!(e, cool_core::obs::ObsEvent::TaskBegin { .. }))
        .count();
    assert_eq!(begins, points.len());
}

#[test]
fn memoization_hits_on_repeat_and_misses_on_mutation() {
    let dir = std::env::temp_dir().join(format!(
        "cool-repro-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = MemoCache::open(&dir).expect("cache dir");
    let points = sample_points();

    let cold = repro::run_sweep(
        &points,
        &SweepOptions {
            jobs: 2,
            cache: Some(cache),
            progress: false,
        },
    );
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, points.len());

    let cache = MemoCache::open(&dir).expect("cache dir");
    let warm = repro::run_sweep(
        &points,
        &SweepOptions {
            jobs: 2,
            cache: Some(cache),
            progress: false,
        },
    );
    assert_eq!(warm.cache_hits, points.len());
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.records, cold.records, "memoized records must be exact");

    // A record stored under the right hash but carrying a different config
    // string (collision / stale epoch) must degrade to a miss.
    let point = points[0];
    let mut forged: ReproRecord = point.run();
    forged.config = format!("{} | epoch=999", point.config_string());
    std::fs::write(
        dir.join(format!("{}.json", point.hash_hex())),
        forged.to_json(0),
    )
    .expect("forge cache entry");
    let cache = MemoCache::open(&dir).expect("cache dir");
    assert!(cache.lookup(&point).is_none(), "mutated config must miss");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deep_topology_memoizes_separately_from_classic() {
    // The same app/version/processor-count at deep scale must key a
    // different cache slot: the machine fingerprint carries the tree.
    let small = MatrixPoint {
        app: "gauss",
        version: Version::Base,
        nprocs: 8,
        scale: Scale::Small,
    };
    let deep = MatrixPoint {
        scale: Scale::Deep,
        ..small
    };
    assert_ne!(small.hash_hex(), deep.hash_hex());
    assert!(
        deep.config_string().contains("tree=2x8x32@1 rlat=100/180"),
        "{}",
        deep.config_string()
    );
    assert!(
        !small.config_string().contains("tree="),
        "{}",
        small.config_string()
    );

    // A record forged under the classic hash but carrying the deep machine
    // fingerprint must degrade to a miss, never be served for the classic
    // point.
    let dir = std::env::temp_dir().join(format!(
        "cool-repro-deeptest-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = MemoCache::open(&dir).expect("cache dir");
    let mut forged: ReproRecord = small.run();
    forged.config = deep.config_string();
    std::fs::write(
        dir.join(format!("{}.json", small.hash_hex())),
        forged.to_json(0),
    )
    .expect("forge cache entry");
    assert!(
        cache.lookup(&small).is_none(),
        "deep-topology record must not satisfy a classic lookup"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn speedups_are_relative_to_the_one_proc_baseline() {
    let points = repro::build_matrix(&["gauss"], None, Some(&[1, 8]), Scale::Small);
    let (records, _) = repro::run_serial(&points);
    let base = records
        .iter()
        .find(|r| r.series == "Base" && r.nprocs == 1)
        .expect("baseline present");
    assert_eq!(base.speedup, 1.0);
    for r in &records {
        if r.nprocs == 8 {
            let expect = base.elapsed as f64 / r.elapsed as f64;
            assert!(
                (r.speedup - expect).abs() < 1e-5,
                "{}/{}: speedup {} vs {}",
                r.app,
                r.series,
                r.speedup,
                expect
            );
        }
    }
}
