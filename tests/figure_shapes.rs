//! Integration tests asserting the *qualitative shapes* of the paper's
//! figures at test scale: who wins, what improves, and that no scheduling
//! version ever changes a numeric result. Absolute magnitudes are checked by
//! the `figures` binary and recorded in EXPERIMENTS.md.

use cool_repro::apps::{self, Version};
use cool_repro::cool_sim::{MachineConfig, SimConfig};

fn flat(nprocs: usize, v: Version) -> SimConfig {
    let mut m = MachineConfig::dash_small(nprocs);
    m.procs_per_cluster = 1;
    SimConfig::new(m).with_policy(v.policy())
}

fn small(nprocs: usize, v: Version) -> SimConfig {
    SimConfig::new(MachineConfig::dash_small(nprocs)).with_policy(v.policy())
}

// ---- Ocean (Figures 5-7) ----

#[test]
fn ocean_distribution_and_affinity_beat_base() {
    let p = cool_repro::workloads::ocean::OceanParams {
        n: 32,
        num_grids: 6,
        regions: 8,
        sweeps: 3,
        seed: 3,
    };
    let base = apps::ocean::run(flat(8, Version::Base), &p, Version::Base);
    let aff = apps::ocean::run(flat(8, Version::AffinityDistr), &p, Version::AffinityDistr);
    assert!(base.max_error < 1e-12 && aff.max_error < 1e-12);
    assert!(
        aff.run.elapsed < base.run.elapsed,
        "Ocean: affinity+distr {} should beat base {}",
        aff.run.elapsed,
        base.run.elapsed
    );
    assert!(
        aff.run.mem.local_fraction() > base.run.mem.local_fraction(),
        "Ocean: distribution should raise the local fraction"
    );
}

// ---- LocusRoute (Figures 10-11) ----

fn locus_params() -> apps::locusroute::LocusParams {
    apps::locusroute::LocusParams {
        circuit: cool_repro::workloads::circuit::Circuit::generate(
            cool_repro::workloads::circuit::CircuitParams {
                width: 64,
                height: 32,
                regions: 8,
                wires_per_region: 48,
                crossing_fraction: 0.1,
            multi_pin_fraction: 0.15,
                seed: 11,
            },
        ),
        iterations: 2,
    }
}

#[test]
fn locusroute_affinity_halves_misses_and_adheres() {
    let p = locus_params();
    let base = apps::locusroute::run(small(8, Version::Base), &p, Version::Base);
    let aff = apps::locusroute::run(small(8, Version::Affinity), &p, Version::Affinity);
    assert_eq!(base.max_error, 0.0);
    assert_eq!(aff.max_error, 0.0);
    // Figure 11: "affinity scheduling nearly halves the number of cache
    // misses". Shape check: a solid reduction.
    assert!(
        (aff.run.mem.misses() as f64) < 0.75 * base.run.mem.misses() as f64,
        "misses: affinity {} vs base {}",
        aff.run.mem.misses(),
        base.run.mem.misses()
    );
    // Section 6.2: "most of the wire tasks (over 80%) in a region are routed
    // on the corresponding processor".
    assert!(
        aff.run.stats.adherence() > 0.8,
        "adherence {}",
        aff.run.stats.adherence()
    );
}

#[test]
fn locusroute_distribution_localises_misses_without_changing_their_count() {
    let p = locus_params();
    let aff = apps::locusroute::run(flat(8, Version::Affinity), &p, Version::Affinity);
    let distr = apps::locusroute::run(flat(8, Version::AffinityDistr), &p, Version::AffinityDistr);
    // Figure 11: "The number of cache misses remain unchanged but more of
    // them are serviced in local rather than remote memory."
    let ratio = distr.run.mem.misses() as f64 / aff.run.mem.misses() as f64;
    assert!(
        (0.7..1.3).contains(&ratio),
        "distribution changed miss count: {ratio}"
    );
    assert!(
        distr.run.mem.local_fraction() > aff.run.mem.local_fraction() + 0.2,
        "local fraction: distr {} vs aff {}",
        distr.run.mem.local_fraction(),
        aff.run.mem.local_fraction()
    );
}

// ---- Panel Cholesky (Figures 12-15) ----

fn panel_problem() -> apps::panel_cholesky::PanelProblem {
    apps::panel_cholesky::PanelProblem::analyse(&apps::panel_cholesky::PanelParams {
        matrix: cool_repro::workloads::matrices::grid_laplacian(12),
        max_panel_width: 4,
    })
}

#[test]
fn panel_cholesky_affinity_wins_and_all_versions_agree() {
    let prob = panel_problem();
    let mut elapsed = std::collections::HashMap::new();
    for v in Version::ALL {
        let rep = apps::panel_cholesky::run(small(8, v), &prob, v);
        assert!(rep.max_error < 1e-9, "{v:?} diverged: {}", rep.max_error);
        elapsed.insert(v.label(), rep.run.elapsed);
    }
    // Figure 14 ordering at scale: affinity versions beat Base and Distr.
    assert!(
        elapsed["Affinity+Distr"] < elapsed["Base"],
        "Affinity+Distr {} vs Base {}",
        elapsed["Affinity+Distr"],
        elapsed["Base"]
    );
    assert!(
        elapsed["Affinity+Distr"] < elapsed["Distr"],
        "Affinity+Distr {} vs Distr {}",
        elapsed["Affinity+Distr"],
        elapsed["Distr"]
    );
}

#[test]
fn panel_cholesky_affinity_cuts_misses() {
    let prob = panel_problem();
    let base = apps::panel_cholesky::run(small(8, Version::Base), &prob, Version::Base);
    let aff = apps::panel_cholesky::run(small(8, Version::AffinityDistr), &prob, Version::AffinityDistr);
    // Figure 15: affinity scheduling significantly reduces cache misses.
    assert!(
        (aff.run.mem.misses() as f64) < 0.7 * base.run.mem.misses() as f64,
        "misses: aff {} vs base {}",
        aff.run.mem.misses(),
        base.run.mem.misses()
    );
}

// ---- Gauss (Figure 3 example) ----

#[test]
fn gauss_task_object_affinity_improves_on_round_robin() {
    let p = apps::gauss::GaussParams { n: 48, seed: 7 };
    let base = apps::gauss::run(flat(8, Version::Base), &p, Version::Base);
    let aff = apps::gauss::run(flat(8, Version::AffinityDistr), &p, Version::AffinityDistr);
    assert!(base.max_error < 1e-9 && aff.max_error < 1e-9);
    assert!(
        aff.run.elapsed < base.run.elapsed,
        "GE: Figure 3 hints {} should beat round-robin {}",
        aff.run.elapsed,
        base.run.elapsed
    );
    assert!(aff.run.mem.local_fraction() > base.run.mem.local_fraction());
}

// ---- Block Cholesky & Barnes-Hut (Figure 16) ----

#[test]
fn block_cholesky_affinity_improves() {
    let p = apps::block_cholesky::BlockParams { n: 64, block: 8 };
    let base = apps::block_cholesky::run(flat(8, Version::Base), &p, Version::Base);
    let aff = apps::block_cholesky::run(flat(8, Version::AffinityDistr), &p, Version::AffinityDistr);
    assert!(base.max_error < 1e-8 && aff.max_error < 1e-8);
    assert!(
        aff.run.mem.local_fraction() > base.run.mem.local_fraction(),
        "block: locality should improve"
    );
}

#[test]
fn barnes_hut_schedule_never_changes_trajectories() {
    let p = apps::barnes_hut::BhParams {
        nbodies: 96,
        groups: 12,
        timesteps: 3,
        theta: 0.7,
        dt: 0.01,
        seed: 4,
    };
    for v in [Version::Base, Version::Distr, Version::AffinityDistr] {
        let rep = apps::barnes_hut::run(small(6, v), &p, v);
        assert!(rep.max_error < 1e-12, "{v:?}: {}", rep.max_error);
    }
}

// ---- Cross-version invariants ----

#[test]
fn speedup_grows_with_processors_for_hinted_versions() {
    let prob = panel_problem();
    let t1 = apps::panel_cholesky::run(small(1, Version::AffinityDistr), &prob, Version::AffinityDistr)
        .run
        .elapsed;
    let t4 = apps::panel_cholesky::run(small(4, Version::AffinityDistr), &prob, Version::AffinityDistr)
        .run
        .elapsed;
    assert!(
        (t4 as f64) < 0.8 * t1 as f64,
        "no parallel speedup: t1={t1} t4={t4}"
    );
}

#[test]
fn cluster_stealing_never_crosses_clusters() {
    let prob = panel_problem();
    let rep = apps::panel_cholesky::run(
        small(8, Version::AffinityDistrCluster),
        &prob,
        Version::AffinityDistrCluster,
    );
    assert_eq!(rep.run.stats.remote_steals, 0);
    assert!(rep.max_error < 1e-9);
}
