/root/repo/target/release/examples/threaded_cholesky-f0a602e792b57469.d: examples/threaded_cholesky.rs

/root/repo/target/release/examples/threaded_cholesky-f0a602e792b57469: examples/threaded_cholesky.rs

examples/threaded_cholesky.rs:
