/root/repo/target/release/examples/_verify_scratch-ebd5cc53ec68f422.d: examples/_verify_scratch.rs

/root/repo/target/release/examples/_verify_scratch-ebd5cc53ec68f422: examples/_verify_scratch.rs

examples/_verify_scratch.rs:
