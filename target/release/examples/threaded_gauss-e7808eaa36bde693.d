/root/repo/target/release/examples/threaded_gauss-e7808eaa36bde693.d: examples/threaded_gauss.rs

/root/repo/target/release/examples/threaded_gauss-e7808eaa36bde693: examples/threaded_gauss.rs

examples/threaded_gauss.rs:
