/root/repo/target/release/deps/cool_repro-fe514a4779535af7.d: src/lib.rs

/root/repo/target/release/deps/libcool_repro-fe514a4779535af7.rlib: src/lib.rs

/root/repo/target/release/deps/libcool_repro-fe514a4779535af7.rmeta: src/lib.rs

src/lib.rs:
