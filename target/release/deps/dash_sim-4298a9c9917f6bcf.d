/root/repo/target/release/deps/dash_sim-4298a9c9917f6bcf.d: crates/dash-sim/src/lib.rs crates/dash-sim/src/cache.rs crates/dash-sim/src/config.rs crates/dash-sim/src/directory.rs crates/dash-sim/src/machine.rs crates/dash-sim/src/monitor.rs crates/dash-sim/src/space.rs

/root/repo/target/release/deps/libdash_sim-4298a9c9917f6bcf.rlib: crates/dash-sim/src/lib.rs crates/dash-sim/src/cache.rs crates/dash-sim/src/config.rs crates/dash-sim/src/directory.rs crates/dash-sim/src/machine.rs crates/dash-sim/src/monitor.rs crates/dash-sim/src/space.rs

/root/repo/target/release/deps/libdash_sim-4298a9c9917f6bcf.rmeta: crates/dash-sim/src/lib.rs crates/dash-sim/src/cache.rs crates/dash-sim/src/config.rs crates/dash-sim/src/directory.rs crates/dash-sim/src/machine.rs crates/dash-sim/src/monitor.rs crates/dash-sim/src/space.rs

crates/dash-sim/src/lib.rs:
crates/dash-sim/src/cache.rs:
crates/dash-sim/src/config.rs:
crates/dash-sim/src/directory.rs:
crates/dash-sim/src/machine.rs:
crates/dash-sim/src/monitor.rs:
crates/dash-sim/src/space.rs:
