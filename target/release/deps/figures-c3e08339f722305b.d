/root/repo/target/release/deps/figures-c3e08339f722305b.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-c3e08339f722305b: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
