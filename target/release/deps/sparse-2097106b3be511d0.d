/root/repo/target/release/deps/sparse-2097106b3be511d0.d: crates/sparse/src/lib.rs crates/sparse/src/csc.rs crates/sparse/src/dense.rs crates/sparse/src/etree.rs crates/sparse/src/numeric.rs crates/sparse/src/ordering.rs crates/sparse/src/supernodes.rs crates/sparse/src/symbolic.rs

/root/repo/target/release/deps/libsparse-2097106b3be511d0.rlib: crates/sparse/src/lib.rs crates/sparse/src/csc.rs crates/sparse/src/dense.rs crates/sparse/src/etree.rs crates/sparse/src/numeric.rs crates/sparse/src/ordering.rs crates/sparse/src/supernodes.rs crates/sparse/src/symbolic.rs

/root/repo/target/release/deps/libsparse-2097106b3be511d0.rmeta: crates/sparse/src/lib.rs crates/sparse/src/csc.rs crates/sparse/src/dense.rs crates/sparse/src/etree.rs crates/sparse/src/numeric.rs crates/sparse/src/ordering.rs crates/sparse/src/supernodes.rs crates/sparse/src/symbolic.rs

crates/sparse/src/lib.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/etree.rs:
crates/sparse/src/numeric.rs:
crates/sparse/src/ordering.rs:
crates/sparse/src/supernodes.rs:
crates/sparse/src/symbolic.rs:
