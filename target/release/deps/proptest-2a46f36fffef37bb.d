/root/repo/target/release/deps/proptest-2a46f36fffef37bb.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2a46f36fffef37bb.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2a46f36fffef37bb.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
