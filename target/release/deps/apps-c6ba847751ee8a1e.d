/root/repo/target/release/deps/apps-c6ba847751ee8a1e.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/block_cholesky.rs crates/apps/src/common.rs crates/apps/src/gauss.rs crates/apps/src/locusroute.rs crates/apps/src/ocean.rs crates/apps/src/panel_cholesky.rs crates/apps/src/threaded.rs

/root/repo/target/release/deps/libapps-c6ba847751ee8a1e.rlib: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/block_cholesky.rs crates/apps/src/common.rs crates/apps/src/gauss.rs crates/apps/src/locusroute.rs crates/apps/src/ocean.rs crates/apps/src/panel_cholesky.rs crates/apps/src/threaded.rs

/root/repo/target/release/deps/libapps-c6ba847751ee8a1e.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/block_cholesky.rs crates/apps/src/common.rs crates/apps/src/gauss.rs crates/apps/src/locusroute.rs crates/apps/src/ocean.rs crates/apps/src/panel_cholesky.rs crates/apps/src/threaded.rs

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/block_cholesky.rs:
crates/apps/src/common.rs:
crates/apps/src/gauss.rs:
crates/apps/src/locusroute.rs:
crates/apps/src/ocean.rs:
crates/apps/src/panel_cholesky.rs:
crates/apps/src/threaded.rs:
