/root/repo/target/release/deps/rand-a5d031fae7d76e63.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a5d031fae7d76e63.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a5d031fae7d76e63.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
