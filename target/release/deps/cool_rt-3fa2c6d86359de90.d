/root/repo/target/release/deps/cool_rt-3fa2c6d86359de90.d: crates/cool-rt/src/lib.rs crates/cool-rt/src/faults.rs crates/cool-rt/src/placement.rs crates/cool-rt/src/runtime.rs crates/cool-rt/src/watchdog.rs

/root/repo/target/release/deps/libcool_rt-3fa2c6d86359de90.rlib: crates/cool-rt/src/lib.rs crates/cool-rt/src/faults.rs crates/cool-rt/src/placement.rs crates/cool-rt/src/runtime.rs crates/cool-rt/src/watchdog.rs

/root/repo/target/release/deps/libcool_rt-3fa2c6d86359de90.rmeta: crates/cool-rt/src/lib.rs crates/cool-rt/src/faults.rs crates/cool-rt/src/placement.rs crates/cool-rt/src/runtime.rs crates/cool-rt/src/watchdog.rs

crates/cool-rt/src/lib.rs:
crates/cool-rt/src/faults.rs:
crates/cool-rt/src/placement.rs:
crates/cool-rt/src/runtime.rs:
crates/cool-rt/src/watchdog.rs:
