/root/repo/target/release/deps/workloads-4822515e0123dbf5.d: crates/workloads/src/lib.rs crates/workloads/src/circuit.rs crates/workloads/src/matrices.rs crates/workloads/src/nbody.rs crates/workloads/src/ocean.rs

/root/repo/target/release/deps/libworkloads-4822515e0123dbf5.rlib: crates/workloads/src/lib.rs crates/workloads/src/circuit.rs crates/workloads/src/matrices.rs crates/workloads/src/nbody.rs crates/workloads/src/ocean.rs

/root/repo/target/release/deps/libworkloads-4822515e0123dbf5.rmeta: crates/workloads/src/lib.rs crates/workloads/src/circuit.rs crates/workloads/src/matrices.rs crates/workloads/src/nbody.rs crates/workloads/src/ocean.rs

crates/workloads/src/lib.rs:
crates/workloads/src/circuit.rs:
crates/workloads/src/matrices.rs:
crates/workloads/src/nbody.rs:
crates/workloads/src/ocean.rs:
