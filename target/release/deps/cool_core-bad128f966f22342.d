/root/repo/target/release/deps/cool_core-bad128f966f22342.d: crates/cool-core/src/lib.rs crates/cool-core/src/affinity.rs crates/cool-core/src/error.rs crates/cool-core/src/faults.rs crates/cool-core/src/ids.rs crates/cool-core/src/policy.rs crates/cool-core/src/queues.rs crates/cool-core/src/stats.rs

/root/repo/target/release/deps/libcool_core-bad128f966f22342.rlib: crates/cool-core/src/lib.rs crates/cool-core/src/affinity.rs crates/cool-core/src/error.rs crates/cool-core/src/faults.rs crates/cool-core/src/ids.rs crates/cool-core/src/policy.rs crates/cool-core/src/queues.rs crates/cool-core/src/stats.rs

/root/repo/target/release/deps/libcool_core-bad128f966f22342.rmeta: crates/cool-core/src/lib.rs crates/cool-core/src/affinity.rs crates/cool-core/src/error.rs crates/cool-core/src/faults.rs crates/cool-core/src/ids.rs crates/cool-core/src/policy.rs crates/cool-core/src/queues.rs crates/cool-core/src/stats.rs

crates/cool-core/src/lib.rs:
crates/cool-core/src/affinity.rs:
crates/cool-core/src/error.rs:
crates/cool-core/src/faults.rs:
crates/cool-core/src/ids.rs:
crates/cool-core/src/policy.rs:
crates/cool-core/src/queues.rs:
crates/cool-core/src/stats.rs:
