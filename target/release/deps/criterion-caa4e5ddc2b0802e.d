/root/repo/target/release/deps/criterion-caa4e5ddc2b0802e.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-caa4e5ddc2b0802e.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-caa4e5ddc2b0802e.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
