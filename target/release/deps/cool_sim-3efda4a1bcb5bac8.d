/root/repo/target/release/deps/cool_sim-3efda4a1bcb5bac8.d: crates/cool-sim/src/lib.rs crates/cool-sim/src/report.rs crates/cool-sim/src/runtime.rs crates/cool-sim/src/task.rs

/root/repo/target/release/deps/libcool_sim-3efda4a1bcb5bac8.rlib: crates/cool-sim/src/lib.rs crates/cool-sim/src/report.rs crates/cool-sim/src/runtime.rs crates/cool-sim/src/task.rs

/root/repo/target/release/deps/libcool_sim-3efda4a1bcb5bac8.rmeta: crates/cool-sim/src/lib.rs crates/cool-sim/src/report.rs crates/cool-sim/src/runtime.rs crates/cool-sim/src/task.rs

crates/cool-sim/src/lib.rs:
crates/cool-sim/src/report.rs:
crates/cool-sim/src/runtime.rs:
crates/cool-sim/src/task.rs:
