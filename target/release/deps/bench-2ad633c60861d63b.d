/root/repo/target/release/deps/bench-2ad633c60861d63b.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/release/deps/libbench-2ad633c60861d63b.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/release/deps/libbench-2ad633c60861d63b.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
