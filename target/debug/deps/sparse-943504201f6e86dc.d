/root/repo/target/debug/deps/sparse-943504201f6e86dc.d: crates/sparse/src/lib.rs crates/sparse/src/csc.rs crates/sparse/src/dense.rs crates/sparse/src/etree.rs crates/sparse/src/numeric.rs crates/sparse/src/ordering.rs crates/sparse/src/supernodes.rs crates/sparse/src/symbolic.rs Cargo.toml

/root/repo/target/debug/deps/libsparse-943504201f6e86dc.rmeta: crates/sparse/src/lib.rs crates/sparse/src/csc.rs crates/sparse/src/dense.rs crates/sparse/src/etree.rs crates/sparse/src/numeric.rs crates/sparse/src/ordering.rs crates/sparse/src/supernodes.rs crates/sparse/src/symbolic.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/etree.rs:
crates/sparse/src/numeric.rs:
crates/sparse/src/ordering.rs:
crates/sparse/src/supernodes.rs:
crates/sparse/src/symbolic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
