/root/repo/target/debug/deps/apps-3a823716019bbd9b.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/block_cholesky.rs crates/apps/src/common.rs crates/apps/src/gauss.rs crates/apps/src/locusroute.rs crates/apps/src/ocean.rs crates/apps/src/panel_cholesky.rs crates/apps/src/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libapps-3a823716019bbd9b.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/block_cholesky.rs crates/apps/src/common.rs crates/apps/src/gauss.rs crates/apps/src/locusroute.rs crates/apps/src/ocean.rs crates/apps/src/panel_cholesky.rs crates/apps/src/threaded.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/block_cholesky.rs:
crates/apps/src/common.rs:
crates/apps/src/gauss.rs:
crates/apps/src/locusroute.rs:
crates/apps/src/ocean.rs:
crates/apps/src/panel_cholesky.rs:
crates/apps/src/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
