/root/repo/target/debug/deps/contention_props-e03178670b9a14d0.d: crates/dash-sim/tests/contention_props.rs Cargo.toml

/root/repo/target/debug/deps/libcontention_props-e03178670b9a14d0.rmeta: crates/dash-sim/tests/contention_props.rs Cargo.toml

crates/dash-sim/tests/contention_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
