/root/repo/target/debug/deps/rt_stress-3d51af1a8593ddd4.d: crates/cool-rt/tests/rt_stress.rs Cargo.toml

/root/repo/target/debug/deps/librt_stress-3d51af1a8593ddd4.rmeta: crates/cool-rt/tests/rt_stress.rs Cargo.toml

crates/cool-rt/tests/rt_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
