/root/repo/target/debug/deps/cool_sim-0fa5d39e878457fa.d: crates/cool-sim/src/lib.rs crates/cool-sim/src/report.rs crates/cool-sim/src/runtime.rs crates/cool-sim/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libcool_sim-0fa5d39e878457fa.rmeta: crates/cool-sim/src/lib.rs crates/cool-sim/src/report.rs crates/cool-sim/src/runtime.rs crates/cool-sim/src/task.rs Cargo.toml

crates/cool-sim/src/lib.rs:
crates/cool-sim/src/report.rs:
crates/cool-sim/src/runtime.rs:
crates/cool-sim/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
