/root/repo/target/debug/deps/figures-d69dfa23b3069eaf.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-d69dfa23b3069eaf.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
