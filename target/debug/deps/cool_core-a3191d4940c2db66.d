/root/repo/target/debug/deps/cool_core-a3191d4940c2db66.d: crates/cool-core/src/lib.rs crates/cool-core/src/affinity.rs crates/cool-core/src/error.rs crates/cool-core/src/faults.rs crates/cool-core/src/ids.rs crates/cool-core/src/policy.rs crates/cool-core/src/queues.rs crates/cool-core/src/stats.rs

/root/repo/target/debug/deps/libcool_core-a3191d4940c2db66.rlib: crates/cool-core/src/lib.rs crates/cool-core/src/affinity.rs crates/cool-core/src/error.rs crates/cool-core/src/faults.rs crates/cool-core/src/ids.rs crates/cool-core/src/policy.rs crates/cool-core/src/queues.rs crates/cool-core/src/stats.rs

/root/repo/target/debug/deps/libcool_core-a3191d4940c2db66.rmeta: crates/cool-core/src/lib.rs crates/cool-core/src/affinity.rs crates/cool-core/src/error.rs crates/cool-core/src/faults.rs crates/cool-core/src/ids.rs crates/cool-core/src/policy.rs crates/cool-core/src/queues.rs crates/cool-core/src/stats.rs

crates/cool-core/src/lib.rs:
crates/cool-core/src/affinity.rs:
crates/cool-core/src/error.rs:
crates/cool-core/src/faults.rs:
crates/cool-core/src/ids.rs:
crates/cool-core/src/policy.rs:
crates/cool-core/src/queues.rs:
crates/cool-core/src/stats.rs:
