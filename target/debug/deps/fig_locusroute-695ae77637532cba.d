/root/repo/target/debug/deps/fig_locusroute-695ae77637532cba.d: crates/bench/benches/fig_locusroute.rs Cargo.toml

/root/repo/target/debug/deps/libfig_locusroute-695ae77637532cba.rmeta: crates/bench/benches/fig_locusroute.rs Cargo.toml

crates/bench/benches/fig_locusroute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
