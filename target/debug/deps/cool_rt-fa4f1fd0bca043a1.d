/root/repo/target/debug/deps/cool_rt-fa4f1fd0bca043a1.d: crates/cool-rt/src/lib.rs crates/cool-rt/src/faults.rs crates/cool-rt/src/placement.rs crates/cool-rt/src/runtime.rs crates/cool-rt/src/watchdog.rs

/root/repo/target/debug/deps/libcool_rt-fa4f1fd0bca043a1.rlib: crates/cool-rt/src/lib.rs crates/cool-rt/src/faults.rs crates/cool-rt/src/placement.rs crates/cool-rt/src/runtime.rs crates/cool-rt/src/watchdog.rs

/root/repo/target/debug/deps/libcool_rt-fa4f1fd0bca043a1.rmeta: crates/cool-rt/src/lib.rs crates/cool-rt/src/faults.rs crates/cool-rt/src/placement.rs crates/cool-rt/src/runtime.rs crates/cool-rt/src/watchdog.rs

crates/cool-rt/src/lib.rs:
crates/cool-rt/src/faults.rs:
crates/cool-rt/src/placement.rs:
crates/cool-rt/src/runtime.rs:
crates/cool-rt/src/watchdog.rs:
