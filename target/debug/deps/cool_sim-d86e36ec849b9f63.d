/root/repo/target/debug/deps/cool_sim-d86e36ec849b9f63.d: crates/cool-sim/src/lib.rs crates/cool-sim/src/report.rs crates/cool-sim/src/runtime.rs crates/cool-sim/src/task.rs

/root/repo/target/debug/deps/cool_sim-d86e36ec849b9f63: crates/cool-sim/src/lib.rs crates/cool-sim/src/report.rs crates/cool-sim/src/runtime.rs crates/cool-sim/src/task.rs

crates/cool-sim/src/lib.rs:
crates/cool-sim/src/report.rs:
crates/cool-sim/src/runtime.rs:
crates/cool-sim/src/task.rs:
