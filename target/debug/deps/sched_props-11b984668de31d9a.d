/root/repo/target/debug/deps/sched_props-11b984668de31d9a.d: crates/cool-sim/tests/sched_props.rs

/root/repo/target/debug/deps/sched_props-11b984668de31d9a: crates/cool-sim/tests/sched_props.rs

crates/cool-sim/tests/sched_props.rs:
