/root/repo/target/debug/deps/prefetch_and_trace-ceef6a0486deb01f.d: crates/cool-sim/tests/prefetch_and_trace.rs

/root/repo/target/debug/deps/prefetch_and_trace-ceef6a0486deb01f: crates/cool-sim/tests/prefetch_and_trace.rs

crates/cool-sim/tests/prefetch_and_trace.rs:
