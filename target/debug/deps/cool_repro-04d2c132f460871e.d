/root/repo/target/debug/deps/cool_repro-04d2c132f460871e.d: src/lib.rs

/root/repo/target/debug/deps/cool_repro-04d2c132f460871e: src/lib.rs

src/lib.rs:
