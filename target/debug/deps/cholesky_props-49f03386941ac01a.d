/root/repo/target/debug/deps/cholesky_props-49f03386941ac01a.d: crates/sparse/tests/cholesky_props.rs Cargo.toml

/root/repo/target/debug/deps/libcholesky_props-49f03386941ac01a.rmeta: crates/sparse/tests/cholesky_props.rs Cargo.toml

crates/sparse/tests/cholesky_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
