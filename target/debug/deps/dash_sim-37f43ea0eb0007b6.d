/root/repo/target/debug/deps/dash_sim-37f43ea0eb0007b6.d: crates/dash-sim/src/lib.rs crates/dash-sim/src/cache.rs crates/dash-sim/src/config.rs crates/dash-sim/src/directory.rs crates/dash-sim/src/machine.rs crates/dash-sim/src/monitor.rs crates/dash-sim/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libdash_sim-37f43ea0eb0007b6.rmeta: crates/dash-sim/src/lib.rs crates/dash-sim/src/cache.rs crates/dash-sim/src/config.rs crates/dash-sim/src/directory.rs crates/dash-sim/src/machine.rs crates/dash-sim/src/monitor.rs crates/dash-sim/src/space.rs Cargo.toml

crates/dash-sim/src/lib.rs:
crates/dash-sim/src/cache.rs:
crates/dash-sim/src/config.rs:
crates/dash-sim/src/directory.rs:
crates/dash-sim/src/machine.rs:
crates/dash-sim/src/monitor.rs:
crates/dash-sim/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
