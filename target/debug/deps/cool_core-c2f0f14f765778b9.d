/root/repo/target/debug/deps/cool_core-c2f0f14f765778b9.d: crates/cool-core/src/lib.rs crates/cool-core/src/affinity.rs crates/cool-core/src/error.rs crates/cool-core/src/faults.rs crates/cool-core/src/ids.rs crates/cool-core/src/policy.rs crates/cool-core/src/queues.rs crates/cool-core/src/stats.rs

/root/repo/target/debug/deps/cool_core-c2f0f14f765778b9: crates/cool-core/src/lib.rs crates/cool-core/src/affinity.rs crates/cool-core/src/error.rs crates/cool-core/src/faults.rs crates/cool-core/src/ids.rs crates/cool-core/src/policy.rs crates/cool-core/src/queues.rs crates/cool-core/src/stats.rs

crates/cool-core/src/lib.rs:
crates/cool-core/src/affinity.rs:
crates/cool-core/src/error.rs:
crates/cool-core/src/faults.rs:
crates/cool-core/src/ids.rs:
crates/cool-core/src/policy.rs:
crates/cool-core/src/queues.rs:
crates/cool-core/src/stats.rs:
