/root/repo/target/debug/deps/figure_shapes-fdddd81261975be9.d: tests/figure_shapes.rs

/root/repo/target/debug/deps/figure_shapes-fdddd81261975be9: tests/figure_shapes.rs

tests/figure_shapes.rs:
