/root/repo/target/debug/deps/sim_props-613cdd2adc49bfff.d: crates/dash-sim/tests/sim_props.rs Cargo.toml

/root/repo/target/debug/deps/libsim_props-613cdd2adc49bfff.rmeta: crates/dash-sim/tests/sim_props.rs Cargo.toml

crates/dash-sim/tests/sim_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
