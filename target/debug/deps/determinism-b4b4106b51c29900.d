/root/repo/target/debug/deps/determinism-b4b4106b51c29900.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-b4b4106b51c29900: tests/determinism.rs

tests/determinism.rs:
