/root/repo/target/debug/deps/workloads-702a79dc8bc9cf6c.d: crates/workloads/src/lib.rs crates/workloads/src/circuit.rs crates/workloads/src/matrices.rs crates/workloads/src/nbody.rs crates/workloads/src/ocean.rs

/root/repo/target/debug/deps/libworkloads-702a79dc8bc9cf6c.rlib: crates/workloads/src/lib.rs crates/workloads/src/circuit.rs crates/workloads/src/matrices.rs crates/workloads/src/nbody.rs crates/workloads/src/ocean.rs

/root/repo/target/debug/deps/libworkloads-702a79dc8bc9cf6c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/circuit.rs crates/workloads/src/matrices.rs crates/workloads/src/nbody.rs crates/workloads/src/ocean.rs

crates/workloads/src/lib.rs:
crates/workloads/src/circuit.rs:
crates/workloads/src/matrices.rs:
crates/workloads/src/nbody.rs:
crates/workloads/src/ocean.rs:
