/root/repo/target/debug/deps/figures-3b57c8370ad0bba6.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-3b57c8370ad0bba6: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
