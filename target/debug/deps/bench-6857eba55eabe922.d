/root/repo/target/debug/deps/bench-6857eba55eabe922.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/bench-6857eba55eabe922: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
