/root/repo/target/debug/deps/cool_rt-4e967e59799aab77.d: crates/cool-rt/src/lib.rs crates/cool-rt/src/faults.rs crates/cool-rt/src/placement.rs crates/cool-rt/src/runtime.rs crates/cool-rt/src/watchdog.rs Cargo.toml

/root/repo/target/debug/deps/libcool_rt-4e967e59799aab77.rmeta: crates/cool-rt/src/lib.rs crates/cool-rt/src/faults.rs crates/cool-rt/src/placement.rs crates/cool-rt/src/runtime.rs crates/cool-rt/src/watchdog.rs Cargo.toml

crates/cool-rt/src/lib.rs:
crates/cool-rt/src/faults.rs:
crates/cool-rt/src/placement.rs:
crates/cool-rt/src/runtime.rs:
crates/cool-rt/src/watchdog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
