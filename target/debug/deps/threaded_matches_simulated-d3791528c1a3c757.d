/root/repo/target/debug/deps/threaded_matches_simulated-d3791528c1a3c757.d: tests/threaded_matches_simulated.rs Cargo.toml

/root/repo/target/debug/deps/libthreaded_matches_simulated-d3791528c1a3c757.rmeta: tests/threaded_matches_simulated.rs Cargo.toml

tests/threaded_matches_simulated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
