/root/repo/target/debug/deps/affinity_props-8ed17c0fdfd08028.d: crates/cool-core/tests/affinity_props.rs Cargo.toml

/root/repo/target/debug/deps/libaffinity_props-8ed17c0fdfd08028.rmeta: crates/cool-core/tests/affinity_props.rs Cargo.toml

crates/cool-core/tests/affinity_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
