/root/repo/target/debug/deps/threaded_matches_simulated-12b37a4867586e3b.d: tests/threaded_matches_simulated.rs

/root/repo/target/debug/deps/threaded_matches_simulated-12b37a4867586e3b: tests/threaded_matches_simulated.rs

tests/threaded_matches_simulated.rs:
