/root/repo/target/debug/deps/apps-40c2bf11325642ea.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/block_cholesky.rs crates/apps/src/common.rs crates/apps/src/gauss.rs crates/apps/src/locusroute.rs crates/apps/src/ocean.rs crates/apps/src/panel_cholesky.rs crates/apps/src/threaded.rs

/root/repo/target/debug/deps/libapps-40c2bf11325642ea.rlib: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/block_cholesky.rs crates/apps/src/common.rs crates/apps/src/gauss.rs crates/apps/src/locusroute.rs crates/apps/src/ocean.rs crates/apps/src/panel_cholesky.rs crates/apps/src/threaded.rs

/root/repo/target/debug/deps/libapps-40c2bf11325642ea.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/block_cholesky.rs crates/apps/src/common.rs crates/apps/src/gauss.rs crates/apps/src/locusroute.rs crates/apps/src/ocean.rs crates/apps/src/panel_cholesky.rs crates/apps/src/threaded.rs

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/block_cholesky.rs:
crates/apps/src/common.rs:
crates/apps/src/gauss.rs:
crates/apps/src/locusroute.rs:
crates/apps/src/ocean.rs:
crates/apps/src/panel_cholesky.rs:
crates/apps/src/threaded.rs:
