/root/repo/target/debug/deps/cholesky_props-8291ca23ebeccf9b.d: crates/sparse/tests/cholesky_props.rs

/root/repo/target/debug/deps/cholesky_props-8291ca23ebeccf9b: crates/sparse/tests/cholesky_props.rs

crates/sparse/tests/cholesky_props.rs:
