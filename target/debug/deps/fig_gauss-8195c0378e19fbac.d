/root/repo/target/debug/deps/fig_gauss-8195c0378e19fbac.d: crates/bench/benches/fig_gauss.rs Cargo.toml

/root/repo/target/debug/deps/libfig_gauss-8195c0378e19fbac.rmeta: crates/bench/benches/fig_gauss.rs Cargo.toml

crates/bench/benches/fig_gauss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
