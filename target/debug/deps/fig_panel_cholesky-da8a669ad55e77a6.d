/root/repo/target/debug/deps/fig_panel_cholesky-da8a669ad55e77a6.d: crates/bench/benches/fig_panel_cholesky.rs Cargo.toml

/root/repo/target/debug/deps/libfig_panel_cholesky-da8a669ad55e77a6.rmeta: crates/bench/benches/fig_panel_cholesky.rs Cargo.toml

crates/bench/benches/fig_panel_cholesky.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
