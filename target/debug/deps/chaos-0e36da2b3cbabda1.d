/root/repo/target/debug/deps/chaos-0e36da2b3cbabda1.d: crates/cool-rt/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-0e36da2b3cbabda1.rmeta: crates/cool-rt/tests/chaos.rs Cargo.toml

crates/cool-rt/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
