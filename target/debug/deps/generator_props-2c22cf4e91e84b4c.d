/root/repo/target/debug/deps/generator_props-2c22cf4e91e84b4c.d: crates/workloads/tests/generator_props.rs

/root/repo/target/debug/deps/generator_props-2c22cf4e91e84b4c: crates/workloads/tests/generator_props.rs

crates/workloads/tests/generator_props.rs:
