/root/repo/target/debug/deps/cool_repro-442b23cb4282239f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcool_repro-442b23cb4282239f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
