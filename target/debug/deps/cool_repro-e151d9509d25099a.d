/root/repo/target/debug/deps/cool_repro-e151d9509d25099a.d: src/lib.rs

/root/repo/target/debug/deps/libcool_repro-e151d9509d25099a.rlib: src/lib.rs

/root/repo/target/debug/deps/libcool_repro-e151d9509d25099a.rmeta: src/lib.rs

src/lib.rs:
