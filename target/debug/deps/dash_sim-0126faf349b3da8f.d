/root/repo/target/debug/deps/dash_sim-0126faf349b3da8f.d: crates/dash-sim/src/lib.rs crates/dash-sim/src/cache.rs crates/dash-sim/src/config.rs crates/dash-sim/src/directory.rs crates/dash-sim/src/machine.rs crates/dash-sim/src/monitor.rs crates/dash-sim/src/space.rs

/root/repo/target/debug/deps/libdash_sim-0126faf349b3da8f.rlib: crates/dash-sim/src/lib.rs crates/dash-sim/src/cache.rs crates/dash-sim/src/config.rs crates/dash-sim/src/directory.rs crates/dash-sim/src/machine.rs crates/dash-sim/src/monitor.rs crates/dash-sim/src/space.rs

/root/repo/target/debug/deps/libdash_sim-0126faf349b3da8f.rmeta: crates/dash-sim/src/lib.rs crates/dash-sim/src/cache.rs crates/dash-sim/src/config.rs crates/dash-sim/src/directory.rs crates/dash-sim/src/machine.rs crates/dash-sim/src/monitor.rs crates/dash-sim/src/space.rs

crates/dash-sim/src/lib.rs:
crates/dash-sim/src/cache.rs:
crates/dash-sim/src/config.rs:
crates/dash-sim/src/directory.rs:
crates/dash-sim/src/machine.rs:
crates/dash-sim/src/monitor.rs:
crates/dash-sim/src/space.rs:
