/root/repo/target/debug/deps/cool_sim-d1b8af8b5bcd4795.d: crates/cool-sim/src/lib.rs crates/cool-sim/src/report.rs crates/cool-sim/src/runtime.rs crates/cool-sim/src/task.rs

/root/repo/target/debug/deps/libcool_sim-d1b8af8b5bcd4795.rlib: crates/cool-sim/src/lib.rs crates/cool-sim/src/report.rs crates/cool-sim/src/runtime.rs crates/cool-sim/src/task.rs

/root/repo/target/debug/deps/libcool_sim-d1b8af8b5bcd4795.rmeta: crates/cool-sim/src/lib.rs crates/cool-sim/src/report.rs crates/cool-sim/src/runtime.rs crates/cool-sim/src/task.rs

crates/cool-sim/src/lib.rs:
crates/cool-sim/src/report.rs:
crates/cool-sim/src/runtime.rs:
crates/cool-sim/src/task.rs:
