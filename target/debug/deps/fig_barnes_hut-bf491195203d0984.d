/root/repo/target/debug/deps/fig_barnes_hut-bf491195203d0984.d: crates/bench/benches/fig_barnes_hut.rs Cargo.toml

/root/repo/target/debug/deps/libfig_barnes_hut-bf491195203d0984.rmeta: crates/bench/benches/fig_barnes_hut.rs Cargo.toml

crates/bench/benches/fig_barnes_hut.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
