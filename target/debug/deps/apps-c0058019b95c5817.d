/root/repo/target/debug/deps/apps-c0058019b95c5817.d: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/block_cholesky.rs crates/apps/src/common.rs crates/apps/src/gauss.rs crates/apps/src/locusroute.rs crates/apps/src/ocean.rs crates/apps/src/panel_cholesky.rs crates/apps/src/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libapps-c0058019b95c5817.rmeta: crates/apps/src/lib.rs crates/apps/src/barnes_hut.rs crates/apps/src/block_cholesky.rs crates/apps/src/common.rs crates/apps/src/gauss.rs crates/apps/src/locusroute.rs crates/apps/src/ocean.rs crates/apps/src/panel_cholesky.rs crates/apps/src/threaded.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/barnes_hut.rs:
crates/apps/src/block_cholesky.rs:
crates/apps/src/common.rs:
crates/apps/src/gauss.rs:
crates/apps/src/locusroute.rs:
crates/apps/src/ocean.rs:
crates/apps/src/panel_cholesky.rs:
crates/apps/src/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
