/root/repo/target/debug/deps/sched_props-34d6ff1a8c5e506e.d: crates/cool-sim/tests/sched_props.rs Cargo.toml

/root/repo/target/debug/deps/libsched_props-34d6ff1a8c5e506e.rmeta: crates/cool-sim/tests/sched_props.rs Cargo.toml

crates/cool-sim/tests/sched_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
