/root/repo/target/debug/deps/sparse-52b269b0056e2ad4.d: crates/sparse/src/lib.rs crates/sparse/src/csc.rs crates/sparse/src/dense.rs crates/sparse/src/etree.rs crates/sparse/src/numeric.rs crates/sparse/src/ordering.rs crates/sparse/src/supernodes.rs crates/sparse/src/symbolic.rs

/root/repo/target/debug/deps/libsparse-52b269b0056e2ad4.rlib: crates/sparse/src/lib.rs crates/sparse/src/csc.rs crates/sparse/src/dense.rs crates/sparse/src/etree.rs crates/sparse/src/numeric.rs crates/sparse/src/ordering.rs crates/sparse/src/supernodes.rs crates/sparse/src/symbolic.rs

/root/repo/target/debug/deps/libsparse-52b269b0056e2ad4.rmeta: crates/sparse/src/lib.rs crates/sparse/src/csc.rs crates/sparse/src/dense.rs crates/sparse/src/etree.rs crates/sparse/src/numeric.rs crates/sparse/src/ordering.rs crates/sparse/src/supernodes.rs crates/sparse/src/symbolic.rs

crates/sparse/src/lib.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/etree.rs:
crates/sparse/src/numeric.rs:
crates/sparse/src/ordering.rs:
crates/sparse/src/supernodes.rs:
crates/sparse/src/symbolic.rs:
