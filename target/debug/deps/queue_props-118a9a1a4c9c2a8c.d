/root/repo/target/debug/deps/queue_props-118a9a1a4c9c2a8c.d: crates/cool-core/tests/queue_props.rs Cargo.toml

/root/repo/target/debug/deps/libqueue_props-118a9a1a4c9c2a8c.rmeta: crates/cool-core/tests/queue_props.rs Cargo.toml

crates/cool-core/tests/queue_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
