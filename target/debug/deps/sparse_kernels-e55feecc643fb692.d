/root/repo/target/debug/deps/sparse_kernels-e55feecc643fb692.d: crates/bench/benches/sparse_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libsparse_kernels-e55feecc643fb692.rmeta: crates/bench/benches/sparse_kernels.rs Cargo.toml

crates/bench/benches/sparse_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
