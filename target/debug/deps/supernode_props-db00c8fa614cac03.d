/root/repo/target/debug/deps/supernode_props-db00c8fa614cac03.d: crates/sparse/tests/supernode_props.rs

/root/repo/target/debug/deps/supernode_props-db00c8fa614cac03: crates/sparse/tests/supernode_props.rs

crates/sparse/tests/supernode_props.rs:
