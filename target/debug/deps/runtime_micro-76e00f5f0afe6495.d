/root/repo/target/debug/deps/runtime_micro-76e00f5f0afe6495.d: crates/bench/benches/runtime_micro.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_micro-76e00f5f0afe6495.rmeta: crates/bench/benches/runtime_micro.rs Cargo.toml

crates/bench/benches/runtime_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
