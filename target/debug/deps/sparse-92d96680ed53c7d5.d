/root/repo/target/debug/deps/sparse-92d96680ed53c7d5.d: crates/sparse/src/lib.rs crates/sparse/src/csc.rs crates/sparse/src/dense.rs crates/sparse/src/etree.rs crates/sparse/src/numeric.rs crates/sparse/src/ordering.rs crates/sparse/src/supernodes.rs crates/sparse/src/symbolic.rs

/root/repo/target/debug/deps/sparse-92d96680ed53c7d5: crates/sparse/src/lib.rs crates/sparse/src/csc.rs crates/sparse/src/dense.rs crates/sparse/src/etree.rs crates/sparse/src/numeric.rs crates/sparse/src/ordering.rs crates/sparse/src/supernodes.rs crates/sparse/src/symbolic.rs

crates/sparse/src/lib.rs:
crates/sparse/src/csc.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/etree.rs:
crates/sparse/src/numeric.rs:
crates/sparse/src/ordering.rs:
crates/sparse/src/supernodes.rs:
crates/sparse/src/symbolic.rs:
