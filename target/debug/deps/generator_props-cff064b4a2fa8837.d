/root/repo/target/debug/deps/generator_props-cff064b4a2fa8837.d: crates/workloads/tests/generator_props.rs Cargo.toml

/root/repo/target/debug/deps/libgenerator_props-cff064b4a2fa8837.rmeta: crates/workloads/tests/generator_props.rs Cargo.toml

crates/workloads/tests/generator_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
