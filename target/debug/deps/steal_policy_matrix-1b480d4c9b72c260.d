/root/repo/target/debug/deps/steal_policy_matrix-1b480d4c9b72c260.d: crates/cool-sim/tests/steal_policy_matrix.rs

/root/repo/target/debug/deps/steal_policy_matrix-1b480d4c9b72c260: crates/cool-sim/tests/steal_policy_matrix.rs

crates/cool-sim/tests/steal_policy_matrix.rs:
