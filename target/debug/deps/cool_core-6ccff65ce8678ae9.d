/root/repo/target/debug/deps/cool_core-6ccff65ce8678ae9.d: crates/cool-core/src/lib.rs crates/cool-core/src/affinity.rs crates/cool-core/src/error.rs crates/cool-core/src/faults.rs crates/cool-core/src/ids.rs crates/cool-core/src/policy.rs crates/cool-core/src/queues.rs crates/cool-core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcool_core-6ccff65ce8678ae9.rmeta: crates/cool-core/src/lib.rs crates/cool-core/src/affinity.rs crates/cool-core/src/error.rs crates/cool-core/src/faults.rs crates/cool-core/src/ids.rs crates/cool-core/src/policy.rs crates/cool-core/src/queues.rs crates/cool-core/src/stats.rs Cargo.toml

crates/cool-core/src/lib.rs:
crates/cool-core/src/affinity.rs:
crates/cool-core/src/error.rs:
crates/cool-core/src/faults.rs:
crates/cool-core/src/ids.rs:
crates/cool-core/src/policy.rs:
crates/cool-core/src/queues.rs:
crates/cool-core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
