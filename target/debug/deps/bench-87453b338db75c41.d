/root/repo/target/debug/deps/bench-87453b338db75c41.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/libbench-87453b338db75c41.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs

/root/repo/target/debug/deps/libbench-87453b338db75c41.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
