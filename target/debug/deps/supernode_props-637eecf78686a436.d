/root/repo/target/debug/deps/supernode_props-637eecf78686a436.d: crates/sparse/tests/supernode_props.rs Cargo.toml

/root/repo/target/debug/deps/libsupernode_props-637eecf78686a436.rmeta: crates/sparse/tests/supernode_props.rs Cargo.toml

crates/sparse/tests/supernode_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
