/root/repo/target/debug/deps/contention_props-8995a5410466890a.d: crates/dash-sim/tests/contention_props.rs

/root/repo/target/debug/deps/contention_props-8995a5410466890a: crates/dash-sim/tests/contention_props.rs

crates/dash-sim/tests/contention_props.rs:
