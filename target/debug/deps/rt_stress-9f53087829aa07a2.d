/root/repo/target/debug/deps/rt_stress-9f53087829aa07a2.d: crates/cool-rt/tests/rt_stress.rs

/root/repo/target/debug/deps/rt_stress-9f53087829aa07a2: crates/cool-rt/tests/rt_stress.rs

crates/cool-rt/tests/rt_stress.rs:
