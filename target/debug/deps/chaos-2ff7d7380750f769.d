/root/repo/target/debug/deps/chaos-2ff7d7380750f769.d: crates/cool-rt/tests/chaos.rs

/root/repo/target/debug/deps/chaos-2ff7d7380750f769: crates/cool-rt/tests/chaos.rs

crates/cool-rt/tests/chaos.rs:
