/root/repo/target/debug/deps/affinity_props-9c4b08f954a892e6.d: crates/cool-core/tests/affinity_props.rs

/root/repo/target/debug/deps/affinity_props-9c4b08f954a892e6: crates/cool-core/tests/affinity_props.rs

crates/cool-core/tests/affinity_props.rs:
