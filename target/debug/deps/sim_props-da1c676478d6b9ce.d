/root/repo/target/debug/deps/sim_props-da1c676478d6b9ce.d: crates/dash-sim/tests/sim_props.rs

/root/repo/target/debug/deps/sim_props-da1c676478d6b9ce: crates/dash-sim/tests/sim_props.rs

crates/dash-sim/tests/sim_props.rs:
