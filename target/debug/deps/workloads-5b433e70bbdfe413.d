/root/repo/target/debug/deps/workloads-5b433e70bbdfe413.d: crates/workloads/src/lib.rs crates/workloads/src/circuit.rs crates/workloads/src/matrices.rs crates/workloads/src/nbody.rs crates/workloads/src/ocean.rs

/root/repo/target/debug/deps/workloads-5b433e70bbdfe413: crates/workloads/src/lib.rs crates/workloads/src/circuit.rs crates/workloads/src/matrices.rs crates/workloads/src/nbody.rs crates/workloads/src/ocean.rs

crates/workloads/src/lib.rs:
crates/workloads/src/circuit.rs:
crates/workloads/src/matrices.rs:
crates/workloads/src/nbody.rs:
crates/workloads/src/ocean.rs:
