/root/repo/target/debug/deps/dash_sim-8c1f8c86e08c2d3c.d: crates/dash-sim/src/lib.rs crates/dash-sim/src/cache.rs crates/dash-sim/src/config.rs crates/dash-sim/src/directory.rs crates/dash-sim/src/machine.rs crates/dash-sim/src/monitor.rs crates/dash-sim/src/space.rs

/root/repo/target/debug/deps/dash_sim-8c1f8c86e08c2d3c: crates/dash-sim/src/lib.rs crates/dash-sim/src/cache.rs crates/dash-sim/src/config.rs crates/dash-sim/src/directory.rs crates/dash-sim/src/machine.rs crates/dash-sim/src/monitor.rs crates/dash-sim/src/space.rs

crates/dash-sim/src/lib.rs:
crates/dash-sim/src/cache.rs:
crates/dash-sim/src/config.rs:
crates/dash-sim/src/directory.rs:
crates/dash-sim/src/machine.rs:
crates/dash-sim/src/monitor.rs:
crates/dash-sim/src/space.rs:
