/root/repo/target/debug/deps/ordering_props-b9e0f5d5fc02350e.d: crates/sparse/tests/ordering_props.rs Cargo.toml

/root/repo/target/debug/deps/libordering_props-b9e0f5d5fc02350e.rmeta: crates/sparse/tests/ordering_props.rs Cargo.toml

crates/sparse/tests/ordering_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
