/root/repo/target/debug/deps/fault_determinism-59cdb715531b9dd3.d: tests/fault_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libfault_determinism-59cdb715531b9dd3.rmeta: tests/fault_determinism.rs Cargo.toml

tests/fault_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
