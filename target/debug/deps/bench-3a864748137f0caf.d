/root/repo/target/debug/deps/bench-3a864748137f0caf.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libbench-3a864748137f0caf.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
