/root/repo/target/debug/deps/fig_ocean-c708ffe8ae2cb9ce.d: crates/bench/benches/fig_ocean.rs Cargo.toml

/root/repo/target/debug/deps/libfig_ocean-c708ffe8ae2cb9ce.rmeta: crates/bench/benches/fig_ocean.rs Cargo.toml

crates/bench/benches/fig_ocean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
