/root/repo/target/debug/deps/cool_rt-7365d7d74fe7c7b9.d: crates/cool-rt/src/lib.rs crates/cool-rt/src/faults.rs crates/cool-rt/src/placement.rs crates/cool-rt/src/runtime.rs crates/cool-rt/src/watchdog.rs

/root/repo/target/debug/deps/cool_rt-7365d7d74fe7c7b9: crates/cool-rt/src/lib.rs crates/cool-rt/src/faults.rs crates/cool-rt/src/placement.rs crates/cool-rt/src/runtime.rs crates/cool-rt/src/watchdog.rs

crates/cool-rt/src/lib.rs:
crates/cool-rt/src/faults.rs:
crates/cool-rt/src/placement.rs:
crates/cool-rt/src/runtime.rs:
crates/cool-rt/src/watchdog.rs:
