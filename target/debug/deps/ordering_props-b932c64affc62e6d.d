/root/repo/target/debug/deps/ordering_props-b932c64affc62e6d.d: crates/sparse/tests/ordering_props.rs

/root/repo/target/debug/deps/ordering_props-b932c64affc62e6d: crates/sparse/tests/ordering_props.rs

crates/sparse/tests/ordering_props.rs:
