/root/repo/target/debug/deps/bench-044b2d8120e3ab8e.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libbench-044b2d8120e3ab8e.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
