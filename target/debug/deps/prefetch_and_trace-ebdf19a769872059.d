/root/repo/target/debug/deps/prefetch_and_trace-ebdf19a769872059.d: crates/cool-sim/tests/prefetch_and_trace.rs Cargo.toml

/root/repo/target/debug/deps/libprefetch_and_trace-ebdf19a769872059.rmeta: crates/cool-sim/tests/prefetch_and_trace.rs Cargo.toml

crates/cool-sim/tests/prefetch_and_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
