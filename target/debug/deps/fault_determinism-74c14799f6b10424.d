/root/repo/target/debug/deps/fault_determinism-74c14799f6b10424.d: tests/fault_determinism.rs

/root/repo/target/debug/deps/fault_determinism-74c14799f6b10424: tests/fault_determinism.rs

tests/fault_determinism.rs:
