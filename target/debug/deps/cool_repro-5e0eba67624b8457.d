/root/repo/target/debug/deps/cool_repro-5e0eba67624b8457.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcool_repro-5e0eba67624b8457.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
