/root/repo/target/debug/deps/queue_props-977433fe6f9247ce.d: crates/cool-core/tests/queue_props.rs

/root/repo/target/debug/deps/queue_props-977433fe6f9247ce: crates/cool-core/tests/queue_props.rs

crates/cool-core/tests/queue_props.rs:
