/root/repo/target/debug/deps/fig_block_cholesky-aece7f34ee4b441b.d: crates/bench/benches/fig_block_cholesky.rs Cargo.toml

/root/repo/target/debug/deps/libfig_block_cholesky-aece7f34ee4b441b.rmeta: crates/bench/benches/fig_block_cholesky.rs Cargo.toml

crates/bench/benches/fig_block_cholesky.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
