/root/repo/target/debug/deps/workloads-7956a9474934738e.d: crates/workloads/src/lib.rs crates/workloads/src/circuit.rs crates/workloads/src/matrices.rs crates/workloads/src/nbody.rs crates/workloads/src/ocean.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-7956a9474934738e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/circuit.rs crates/workloads/src/matrices.rs crates/workloads/src/nbody.rs crates/workloads/src/ocean.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/circuit.rs:
crates/workloads/src/matrices.rs:
crates/workloads/src/nbody.rs:
crates/workloads/src/ocean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
