/root/repo/target/debug/deps/steal_policy_matrix-d9c4241f5426315c.d: crates/cool-sim/tests/steal_policy_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libsteal_policy_matrix-d9c4241f5426315c.rmeta: crates/cool-sim/tests/steal_policy_matrix.rs Cargo.toml

crates/cool-sim/tests/steal_policy_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
