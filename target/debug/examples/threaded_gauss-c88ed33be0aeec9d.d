/root/repo/target/debug/examples/threaded_gauss-c88ed33be0aeec9d.d: examples/threaded_gauss.rs

/root/repo/target/debug/examples/threaded_gauss-c88ed33be0aeec9d: examples/threaded_gauss.rs

examples/threaded_gauss.rs:
