/root/repo/target/debug/examples/ocean-a06c9c9534dd3409.d: examples/ocean.rs Cargo.toml

/root/repo/target/debug/examples/libocean-a06c9c9534dd3409.rmeta: examples/ocean.rs Cargo.toml

examples/ocean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
