/root/repo/target/debug/examples/threaded_cholesky-703a220a0b6342d0.d: examples/threaded_cholesky.rs Cargo.toml

/root/repo/target/debug/examples/libthreaded_cholesky-703a220a0b6342d0.rmeta: examples/threaded_cholesky.rs Cargo.toml

examples/threaded_cholesky.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
