/root/repo/target/debug/examples/panel_cholesky-4dac03624c3528b1.d: examples/panel_cholesky.rs Cargo.toml

/root/repo/target/debug/examples/libpanel_cholesky-4dac03624c3528b1.rmeta: examples/panel_cholesky.rs Cargo.toml

examples/panel_cholesky.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
