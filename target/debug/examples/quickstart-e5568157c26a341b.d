/root/repo/target/debug/examples/quickstart-e5568157c26a341b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e5568157c26a341b: examples/quickstart.rs

examples/quickstart.rs:
