/root/repo/target/debug/examples/schedule_trace-d6a3ab1ca5fd6e7e.d: examples/schedule_trace.rs

/root/repo/target/debug/examples/schedule_trace-d6a3ab1ca5fd6e7e: examples/schedule_trace.rs

examples/schedule_trace.rs:
