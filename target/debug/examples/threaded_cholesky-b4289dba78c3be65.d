/root/repo/target/debug/examples/threaded_cholesky-b4289dba78c3be65.d: examples/threaded_cholesky.rs

/root/repo/target/debug/examples/threaded_cholesky-b4289dba78c3be65: examples/threaded_cholesky.rs

examples/threaded_cholesky.rs:
