/root/repo/target/debug/examples/threaded_gauss-785e8bd5bf90214b.d: examples/threaded_gauss.rs Cargo.toml

/root/repo/target/debug/examples/libthreaded_gauss-785e8bd5bf90214b.rmeta: examples/threaded_gauss.rs Cargo.toml

examples/threaded_gauss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
