/root/repo/target/debug/examples/locusroute-88945d215bcf7c0c.d: examples/locusroute.rs Cargo.toml

/root/repo/target/debug/examples/liblocusroute-88945d215bcf7c0c.rmeta: examples/locusroute.rs Cargo.toml

examples/locusroute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
