/root/repo/target/debug/examples/panel_cholesky-3c9b3e79adb81ebd.d: examples/panel_cholesky.rs

/root/repo/target/debug/examples/panel_cholesky-3c9b3e79adb81ebd: examples/panel_cholesky.rs

examples/panel_cholesky.rs:
