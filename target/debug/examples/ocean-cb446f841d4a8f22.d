/root/repo/target/debug/examples/ocean-cb446f841d4a8f22.d: examples/ocean.rs

/root/repo/target/debug/examples/ocean-cb446f841d4a8f22: examples/ocean.rs

examples/ocean.rs:
