/root/repo/target/debug/examples/schedule_trace-d1d96c30c97ca5c9.d: examples/schedule_trace.rs Cargo.toml

/root/repo/target/debug/examples/libschedule_trace-d1d96c30c97ca5c9.rmeta: examples/schedule_trace.rs Cargo.toml

examples/schedule_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
