/root/repo/target/debug/examples/_verify_scratch-10155a051ec754fe.d: examples/_verify_scratch.rs

/root/repo/target/debug/examples/_verify_scratch-10155a051ec754fe: examples/_verify_scratch.rs

examples/_verify_scratch.rs:
