/root/repo/target/debug/examples/locusroute-0f04e0699c8bbaa4.d: examples/locusroute.rs

/root/repo/target/debug/examples/locusroute-0f04e0699c8bbaa4: examples/locusroute.rs

examples/locusroute.rs:
